"""The reference one-rule-at-a-time interpreter.

This is the executable specification of Kôika: it walks the typed AST and
maintains the naive rule/cycle logs from :mod:`repro.semantics.logs`.  It is
slow and obviously correct; every compiled backend is differentially tested
against it.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, List, Optional

from ..errors import SimulationError
from ..harness.env import Environment
from ..koika.ast import (
    Abort,
    Action,
    Assign,
    Binop,
    Call,
    Const,
    ExtCall,
    GetField,
    If,
    Let,
    Read,
    Seq,
    SubstField,
    Unop,
    Var,
    Write,
)
from ..koika.design import Design
from ..koika.types import StructType, mask, to_signed, truncate
from .logs import (
    Log,
    RuleAborted,
    commit_value,
    may_read0,
    may_read1,
    may_write0,
    may_write1,
    read1_value,
)

sys.setrecursionlimit(max(sys.getrecursionlimit(), 20000))


class Observer:
    """Hook points for tools (tests, tracing).  All methods are optional."""

    def on_rule_start(self, rule: str) -> None: ...

    def on_rule_commit(self, rule: str) -> None: ...

    def on_rule_abort(self, rule: str, aborted: RuleAborted) -> None: ...

    def on_read(self, rule: str, register: str, port: int, value: int) -> None: ...

    def on_write(self, rule: str, register: str, port: int, value: int) -> None: ...

    def on_cycle_end(self, cycle: int) -> None: ...


class CycleReport:
    """Which rules committed/aborted during one interpreted cycle."""

    def __init__(self) -> None:
        self.committed: List[str] = []
        self.aborted: Dict[str, RuleAborted] = {}

    def fired(self, rule: str) -> bool:
        return rule in self.committed


class Interpreter:
    """Cycle-accurate reference simulator for a finalized design."""

    backend_name = "interp"

    def __init__(self, design: Design, env: Optional[Environment] = None,
                 observer: Optional[Observer] = None):
        if not design.finalized:
            design.finalize()
        self.design = design
        self.env = env or Environment()
        self.observer = observer
        self.state: Dict[str, int] = design.initial_state()
        self.cycle = 0
        self._cycle_log = Log(design.registers)
        self._rule_log = Log(design.registers)
        self._current_rule = ""

    # -- SimHandle protocol -------------------------------------------------
    def peek(self, register: str) -> int:
        try:
            return self.state[register]
        except KeyError:
            raise SimulationError(f"unknown register {register!r}")

    def poke(self, register: str, value: int) -> None:
        reg = self.design.registers.get(register)
        if reg is None:
            raise SimulationError(f"unknown register {register!r}")
        self.state[register] = reg.typ.validate(truncate(value, reg.typ.width))

    def state_dict(self) -> Dict[str, int]:
        return dict(self.state)

    def snapshot(self) -> Dict[str, int]:
        return dict(self.state)

    def restore(self, snapshot: Dict[str, int]) -> None:
        self.state = dict(snapshot)

    # -- execution ----------------------------------------------------------
    def run_cycle(self, rule_order: Optional[List[str]] = None) -> CycleReport:
        """Execute one cycle; optionally override the scheduler order."""
        self.env.before_cycle(self)
        report = CycleReport()
        self._cycle_log.clear()
        order = rule_order if rule_order is not None else self.design.scheduler
        for rule_name in order:
            rule = self.design.rules[rule_name]
            self._rule_log.clear()
            self._current_rule = rule_name
            if self.observer:
                self.observer.on_rule_start(rule_name)
            try:
                self._eval(rule.body, {})
            except RuleAborted as aborted:
                report.aborted[rule_name] = aborted
                if self.observer:
                    self.observer.on_rule_abort(rule_name, aborted)
                continue
            self._cycle_log.merge_rule_into_cycle(self._rule_log)
            report.committed.append(rule_name)
            if self.observer:
                self.observer.on_rule_commit(rule_name)
        for name in self.state:
            self.state[name] = commit_value(self.state[name], self._cycle_log[name])
        self.cycle += 1
        if self.observer:
            self.observer.on_cycle_end(self.cycle)
        self.env.after_cycle(self)
        return report

    def run(self, cycles: int) -> None:
        for _ in range(cycles):
            self.run_cycle()

    def run_until(self, predicate: Callable[["Interpreter"], bool],
                  max_cycles: int = 1_000_000) -> int:
        """Run until ``predicate(self)`` holds; returns cycles executed."""
        for elapsed in range(max_cycles):
            if predicate(self):
                return elapsed
            self.run_cycle()
        raise SimulationError(f"predicate not reached within {max_cycles} cycles")

    # -- evaluation -----------------------------------------------------------
    def _eval(self, node: Action, env: Dict[str, int]) -> int:
        method = self._EVAL[type(node)]
        return method(self, node, env)

    def _eval_const(self, node: Const, env: Dict[str, int]) -> int:
        return node.value

    def _eval_var(self, node: Var, env: Dict[str, int]) -> int:
        return env[node.name]

    def _eval_let(self, node: Let, env: Dict[str, int]) -> int:
        value = self._eval(node.value, env)
        had = node.name in env
        saved = env.get(node.name)
        env[node.name] = value
        try:
            return self._eval(node.body, env)
        finally:
            if had:
                env[node.name] = saved  # type: ignore[assignment]
            else:
                del env[node.name]

    def _eval_assign(self, node: Assign, env: Dict[str, int]) -> int:
        env[node.name] = self._eval(node.value, env)
        return 0

    def _eval_seq(self, node: Seq, env: Dict[str, int]) -> int:
        result = 0
        for action in node.actions:
            result = self._eval(action, env)
        return result

    def _eval_if(self, node: If, env: Dict[str, int]) -> int:
        if self._eval(node.cond, env):
            return self._eval(node.then, env)
        if node.orelse is None:
            return 0
        return self._eval(node.orelse, env)

    def _eval_abort(self, node: Abort, env: Dict[str, int]) -> int:
        raise RuleAborted("explicit-abort")

    def _eval_read(self, node: Read, env: Dict[str, int]) -> int:
        name = node.reg
        cycle_entry = self._cycle_log[name]
        rule_entry = self._rule_log[name]
        if node.port == 0:
            if not may_read0(cycle_entry):
                raise RuleAborted("conflict", register=name, operation="rd0")
            rule_entry.rd0 = True
            value = self.state[name]
        else:
            if not may_read1(cycle_entry):
                raise RuleAborted("conflict", register=name, operation="rd1")
            rule_entry.rd1 = True
            value = read1_value(self.state[name], cycle_entry, rule_entry)
        if self.observer:
            self.observer.on_read(self._current_rule, name, node.port, value)
        return value

    def _eval_write(self, node: Write, env: Dict[str, int]) -> int:
        value = self._eval(node.value, env)
        name = node.reg
        cycle_entry = self._cycle_log[name]
        rule_entry = self._rule_log[name]
        if node.port == 0:
            if not may_write0(cycle_entry, rule_entry):
                raise RuleAborted("conflict", register=name, operation="wr0")
            rule_entry.wr0 = True
            rule_entry.data0 = value
        else:
            if not may_write1(cycle_entry, rule_entry):
                raise RuleAborted("conflict", register=name, operation="wr1")
            rule_entry.wr1 = True
            rule_entry.data1 = value
        if self.observer:
            self.observer.on_write(self._current_rule, name, node.port, value)
        return 0

    def _eval_unop(self, node: Unop, env: Dict[str, int]) -> int:
        value = self._eval(node.arg, env)
        op = node.op
        if op == "not":
            return (~value) & mask(node.typ.width)
        if op == "neg":
            return (-value) & mask(node.typ.width)
        if op == "zextl":
            return value
        if op == "sextl":
            return truncate(to_signed(value, node.arg.typ.width), node.param)
        offset, width = node.param
        return (value >> offset) & mask(width)

    def _eval_binop(self, node: Binop, env: Dict[str, int]) -> int:
        a = self._eval(node.a, env)
        b = self._eval(node.b, env)
        op = node.op
        if op == "add":
            return (a + b) & mask(node.typ.width)
        if op == "sub":
            return (a - b) & mask(node.typ.width)
        if op == "and":
            return a & b
        if op == "or":
            return a | b
        if op == "xor":
            return a ^ b
        if op == "mul":
            return (a * b) & mask(node.typ.width)
        if op == "divu":
            # RISC-V semantics: division by zero yields all ones.
            return a // b if b else mask(node.typ.width)
        if op == "remu":
            # RISC-V semantics: remainder by zero yields the dividend.
            return a % b if b else a
        if op == "eq":
            return int(a == b)
        if op == "ne":
            return int(a != b)
        if op == "ltu":
            return int(a < b)
        if op == "leu":
            return int(a <= b)
        if op == "gtu":
            return int(a > b)
        if op == "geu":
            return int(a >= b)
        width = node.a.typ.width
        if op == "lts":
            return int(to_signed(a, width) < to_signed(b, width))
        if op == "les":
            return int(to_signed(a, width) <= to_signed(b, width))
        if op == "gts":
            return int(to_signed(a, width) > to_signed(b, width))
        if op == "ges":
            return int(to_signed(a, width) >= to_signed(b, width))
        if op == "sll":
            return (a << b) & mask(width) if b < width else 0
        if op == "srl":
            return a >> b if b < width else 0
        if op == "sra":
            shift = min(b, width)
            return truncate(to_signed(a, width) >> shift, width)
        if op == "concat":
            return (a << node.b.typ.width) | b
        if op == "sel":
            return (a >> b) & 1 if b < width else 0
        raise SimulationError(f"unknown binop {op!r}")

    def _eval_getfield(self, node: GetField, env: Dict[str, int]) -> int:
        value = self._eval(node.arg, env)
        struct = node.arg.typ
        assert isinstance(struct, StructType)
        return struct.extract(value, node.field_name)

    def _eval_substfield(self, node: SubstField, env: Dict[str, int]) -> int:
        value = self._eval(node.arg, env)
        field_value = self._eval(node.value, env)
        struct = node.arg.typ
        assert isinstance(struct, StructType)
        return struct.subst(value, node.field_name, field_value)

    def _eval_extcall(self, node: ExtCall, env: Dict[str, int]) -> int:
        arg = self._eval(node.arg, env)
        result = self.env.extcall(node.fn, arg)
        return truncate(result, node.typ.width)

    def _eval_call(self, node: Call, env: Dict[str, int]) -> int:
        fn = self.design.fns[node.fn]
        call_env = {
            name: self._eval(actual, env)
            for (name, _), actual in zip(fn.args, node.args)
        }
        return self._eval(fn.body, call_env)

    _EVAL = {}  # filled in below


Interpreter._EVAL = {
    Const: Interpreter._eval_const,
    Var: Interpreter._eval_var,
    Let: Interpreter._eval_let,
    Assign: Interpreter._eval_assign,
    Seq: Interpreter._eval_seq,
    If: Interpreter._eval_if,
    Abort: Interpreter._eval_abort,
    Read: Interpreter._eval_read,
    Write: Interpreter._eval_write,
    Unop: Interpreter._eval_unop,
    Binop: Interpreter._eval_binop,
    GetField: Interpreter._eval_getfield,
    SubstField: Interpreter._eval_substfield,
    ExtCall: Interpreter._eval_extcall,
    Call: Interpreter._eval_call,
}
