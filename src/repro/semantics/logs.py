"""Rule and cycle logs — the reference implementation of Kôika's semantics.

This module transcribes §3.1 of the paper verbatim: a *rule log* records the
reads and writes performed by the rule currently executing, and a *cycle
log* records those of all rules committed so far this cycle.  The port
rules are:

* ``rd0`` — fails if the **cycle log** contains a write at *any* port;
  returns the beginning-of-cycle value.
* ``rd1`` — fails if the **cycle log** contains a write at port 1; returns
  the most recent ``wr0`` value from the rule log, then the cycle log,
  falling back to the beginning-of-cycle value.
* ``wr0`` — fails if *either log* contains ``rd1``, ``wr0``, or ``wr1``.
* ``wr1`` — fails if *either log* contains ``wr1``.

At the end of a cycle each register takes its ``data1`` value if written at
port 1, else its ``data0`` value if written at port 0, else keeps its value.

This naive, allocation-happy implementation is deliberately the clearest
possible rendition: it is the oracle every optimized backend is
differentially tested against.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional


class LogEntry:
    """Per-register portion of a log: read-write set plus data fields."""

    __slots__ = ("rd0", "rd1", "wr0", "wr1", "data0", "data1")

    def __init__(self) -> None:
        self.rd0 = False
        self.rd1 = False
        self.wr0 = False
        self.wr1 = False
        self.data0: Optional[int] = None
        self.data1: Optional[int] = None

    def clear(self) -> None:
        self.rd0 = self.rd1 = self.wr0 = self.wr1 = False
        self.data0 = self.data1 = None

    def any_write(self) -> bool:
        return self.wr0 or self.wr1

    def copy_from(self, other: "LogEntry") -> None:
        self.rd0 = other.rd0
        self.rd1 = other.rd1
        self.wr0 = other.wr0
        self.wr1 = other.wr1
        self.data0 = other.data0
        self.data1 = other.data1

    def __repr__(self) -> str:
        flags = "".join(
            name for name, flag in
            (("r0", self.rd0), ("r1", self.rd1), ("w0", self.wr0), ("w1", self.wr1))
            if flag
        )
        return f"<{flags or 'empty'} d0={self.data0} d1={self.data1}>"


class Log:
    """A mapping from register name to :class:`LogEntry`."""

    def __init__(self, registers: Iterable[str]):
        self.entries: Dict[str, LogEntry] = {name: LogEntry() for name in registers}

    def __getitem__(self, register: str) -> LogEntry:
        return self.entries[register]

    def clear(self) -> None:
        for entry in self.entries.values():
            entry.clear()

    def copy_from(self, other: "Log") -> None:
        for name, entry in self.entries.items():
            entry.copy_from(other.entries[name])

    def merge_rule_into_cycle(self, rule_log: "Log") -> None:
        """Append a successful rule's log into this cycle log (§3.1)."""
        for name, mine in self.entries.items():
            theirs = rule_log.entries[name]
            mine.rd0 |= theirs.rd0
            mine.rd1 |= theirs.rd1
            if theirs.wr0:
                mine.wr0 = True
                mine.data0 = theirs.data0
            if theirs.wr1:
                mine.wr1 = True
                mine.data1 = theirs.data1


class RuleAborted(Exception):
    """Raised (and caught by the scheduler loop) when a rule cancels.

    ``reason`` distinguishes explicit ``abort`` from port-rule conflicts,
    which the debugger surfaces differently (paper §4.2, case study 1).
    """

    __slots__ = ("reason", "register", "operation")

    def __init__(self, reason: str, register: Optional[str] = None,
                 operation: Optional[str] = None):
        super().__init__(reason)
        self.reason = reason
        self.register = register
        self.operation = operation


def may_read0(cycle_entry: LogEntry) -> bool:
    return not (cycle_entry.wr0 or cycle_entry.wr1)


def may_read1(cycle_entry: LogEntry) -> bool:
    return not cycle_entry.wr1


def may_write0(cycle_entry: LogEntry, rule_entry: LogEntry) -> bool:
    return not (
        cycle_entry.rd1 or cycle_entry.wr0 or cycle_entry.wr1
        or rule_entry.rd1 or rule_entry.wr0 or rule_entry.wr1
    )


def may_write1(cycle_entry: LogEntry, rule_entry: LogEntry) -> bool:
    return not (cycle_entry.wr1 or rule_entry.wr1)


def read1_value(state_value: int, cycle_entry: LogEntry, rule_entry: LogEntry) -> int:
    """The value observed by ``rd1``: latest ``wr0`` from either log, else
    the beginning-of-cycle value."""
    if rule_entry.wr0:
        assert rule_entry.data0 is not None
        return rule_entry.data0
    if cycle_entry.wr0:
        assert cycle_entry.data0 is not None
        return cycle_entry.data0
    return state_value


def commit_value(state_value: int, cycle_entry: LogEntry) -> int:
    """End-of-cycle register update (§3.1)."""
    if cycle_entry.wr1:
        assert cycle_entry.data1 is not None
        return cycle_entry.data1
    if cycle_entry.wr0:
        assert cycle_entry.data0 is not None
        return cycle_entry.data0
    return state_value
