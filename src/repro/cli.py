"""Command-line interface: ``python -m repro <command> ...``.

Gives the whole toolchain a front door:

* ``list``            — the built-in designs and their sizes;
* ``pretty DESIGN``   — canonical Kôika rendering;
* ``model DESIGN``    — the generated Cuttlesim model source;
* ``verilog DESIGN``  — the synthesis path's Verilog;
* ``report DESIGN``   — what the static analysis proved;
* ``asm PROGRAM``     — assemble a built-in program or .s file, dump the listing;
* ``run DESIGN``      — simulate (any backend; rv32 designs take --program);
* ``trace DESIGN``    — per-cycle commit/delta trace;
* ``bench DESIGN``    — quick cycles/second measurement per backend;
* ``parallel DESIGN`` — randomized-schedule sweep on the worker fleet,
  with the content-addressed model cache and a JSON perf report;
* ``serve``           — persistent batch-simulation daemon (job queue,
  resident warm-cache workers, the ``repro-serve-v1`` socket protocol);
* ``submit DESIGN``   — send one job to a running daemon, print its record;
* ``stats``           — scrape a running daemon's Prometheus metrics.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, Optional

from .designs import (TABLE1_DESIGNS, build_msi, build_rv32i_bypass,
                      build_rv32im, build_stm, make_msi)
from .harness import Environment, make_simulator
from .koika import design_sloc, pretty_design

#: All designs reachable from the CLI.
DESIGNS: Dict[str, Callable] = dict(TABLE1_DESIGNS)
DESIGNS["rv32im"] = build_rv32im
DESIGNS["rv32i-bypass"] = build_rv32i_bypass

from .designs.rv32 import build_rv32i_cached  # noqa: E402

DESIGNS["rv32i-cached"] = build_rv32i_cached
DESIGNS["stm"] = build_stm
DESIGNS["msi"] = build_msi
DESIGNS["msi-buggy"] = lambda: build_msi(bug=True)
DESIGNS["msi4"] = lambda: make_msi(4, 16)
DESIGNS["msi8"] = lambda: make_msi(8, 32)
DESIGNS["msi8-traffic"] = lambda: make_msi(8, 32, traffic=True)

from .designs import build_uart  # noqa: E402  (registry entries)

DESIGNS["uart"] = build_uart

from .designs import build_soc  # noqa: E402

DESIGNS["soc"] = build_soc

from .designs import build_dsp, build_prodcons, build_router  # noqa: E402

DESIGNS["dsp"] = build_dsp
DESIGNS["router"] = build_router
DESIGNS["prodcons"] = build_prodcons

#: Built-in RISC-V programs: name -> source builder taking an int arg.
PROGRAMS: Dict[str, Callable] = {}


def _programs() -> Dict[str, Callable]:
    if not PROGRAMS:
        from .riscv import programs as p

        PROGRAMS.update({
            "primes": p.primes_source,
            "nops": p.nops_source,
            "arith": p.arithmetic_source,
            "fib": p.fibonacci_source,
            "sort": lambda _n=0: p.sort_source(),
            "branchy": p.branchy_source,
            "stream": p.stream_output_source,
        })
    return PROGRAMS


def _get_design(name: str):
    if name not in DESIGNS:
        raise SystemExit(f"unknown design {name!r}; try: "
                         f"{', '.join(sorted(DESIGNS))}")
    return DESIGNS[name]()


def _default_env(design, program: Optional[str],
                 program_arg: int) -> Environment:
    """Build a suitable environment for a design by convention."""
    name = design.name
    if name == "rv32i_cached":
        from .designs.rv32.cache import make_cached_env
        from .riscv import assemble

        source = _programs().get(program or "primes")
        if source is None:
            raise SystemExit(f"unknown program {program!r}")
        return make_cached_env(assemble(source(program_arg)), latency=4)
    if name.startswith("rv32"):
        from .designs.rv32 import RV32MemoryDevice
        from .riscv import assemble

        source = _programs().get(program or "primes")
        if source is None:
            raise SystemExit(f"unknown program {program!r}; try: "
                             f"{', '.join(sorted(_programs()))}")
        max_reg = 16 if "rv32e" in name else 32
        assembled = assemble(source(program_arg), max_reg=max_reg)
        env = Environment()
        prefixes = ("c0_", "c1_") if "mc" in name else ("",)
        for prefix in prefixes:
            env.add_device(RV32MemoryDevice(assembled, prefix))
        return env
    if name == "fir":
        return Environment({"get_sample": lambda _: 0x12345678,
                            "put_result": lambda _v: 0})
    if name == "fft":
        return Environment({"get_sample": lambda k: (k * 7919) & 0xFFFF,
                            "put_result": lambda _v: 0})
    if name == "stm":
        return Environment({"get_input": lambda _: 0xDEAD,
                            "put_output": lambda _v: 0})
    if name == "soc":
        from .designs.soc import make_soc_env, print_string_source
        from .riscv import assemble

        return make_soc_env(assemble(print_string_source("Hi from repro!")))
    if name == "uart":
        from .designs.uart import make_uart_env

        return make_uart_env([0x48, 0x49, 0x21])
    if name.startswith("msi"):
        if "traffic" in name:
            # Traffic-mode MSI systems carry their own per-core LFSR
            # request generators; a driver device would double-drive
            # the command registers.
            return Environment()
        from .designs.msi import make_msi_env

        # Conventional contended script, scaled to the core count: every
        # core writes the same line, then core 0 reads it back (on the
        # 2-core system this is the case-study-1 sharing pattern).
        cores = sorted({int(reg.split("_")[0][1:]) for reg in design.registers
                        if reg[0] == "c" and reg.split("_")[0][1:].isdigit()})
        script = [(core, "write", 2, 0xAA00 | core) for core in cores]
        script.append((0, "read", 2, 0))
        return make_msi_env(script, n_cores=len(cores))
    return Environment()


# ----------------------------------------------------------------------
# Subcommands.
# ----------------------------------------------------------------------

def cmd_list(args) -> int:
    from .rtl import lower_design

    print(f"{'design':<12}{'regs':>6}{'rules':>7}{'koika sloc':>12}"
          f"{'netlist':>9}")
    for name in sorted(DESIGNS):
        design = DESIGNS[name]()
        nodes = lower_design(design).stats()["total"]
        print(f"{name:<12}{len(design.registers):>6}{len(design.rules):>7}"
              f"{design_sloc(design):>12}{nodes:>9}")
    return 0


def cmd_pretty(args) -> int:
    print(pretty_design(_get_design(args.design)))
    return 0


def cmd_model(args) -> int:
    from .cuttlesim import compile_model

    design = _get_design(args.design)
    if args.ir:
        from .cuttlesim.passes import dump_ir

        print(dump_ir(design, opt=args.opt, stop_after=args.stop_after))
        return 0
    if args.stop_after is not None:
        from .cuttlesim.codegen import compile_model_prefix

        cls = compile_model_prefix(design, opt=args.opt,
                                   stop_after=args.stop_after)
        print(cls.SOURCE)
        return 0
    cls = compile_model(design, opt=args.opt,
                        instrument=args.instrument, simplify=args.simplify,
                        warn_goldberg=False)
    print(cls.SOURCE)
    return 0


def cmd_verilog(args) -> int:
    from .rtl import generate_verilog

    print(generate_verilog(_get_design(args.design)))
    return 0


#: Fill colors for up to 8 shards in ``repro report --conflicts
#: --format dot`` (ColorBrewer qualitative; wraps past 8).
_SHARD_PALETTE = ("#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f",
                  "#cab2d6", "#ffff99", "#8dd3c7", "#fccde5")


def _conflict_dot(graph, partition=None) -> str:
    """Graphviz rendering of the conflict graph; with a partition,
    nodes are colored by shard and cut edges drawn red."""
    owner = {}
    if partition is not None:
        for index, rules in enumerate(partition.shards):
            for rule in rules:
                owner[rule] = index
    lines = [f'graph "{graph.design_name}" {{',
             '  layout=fdp; overlap=false;',
             '  node [style=filled, shape=box, fontsize=10, '
             'fillcolor="#eeeeee"];']
    for rule in graph.rules:
        attrs = []
        if rule in owner:
            index = owner[rule]
            color = _SHARD_PALETTE[index % len(_SHARD_PALETTE)]
            attrs.append(f'fillcolor="{color}"')
            attrs.append(f'label="{rule}\\nshard {index}"')
        suffix = f" [{', '.join(attrs)}]" if attrs else ""
        lines.append(f'  "{rule}"{suffix};')
    for pair, reasons in sorted(graph.edges.items(),
                                key=lambda kv: sorted(kv[0])):
        a, b = sorted(pair)
        attrs = [f'tooltip="{"; ".join(reasons)}"']
        if owner and owner.get(a) != owner.get(b):
            attrs.append('color="#d62728"')
            attrs.append("penwidth=2")
        lines.append(f'  "{a}" -- "{b}" [{", ".join(attrs)}];')
    lines.append("}")
    return "\n".join(lines)


def _report_conflicts(design, fmt: str, shards: int) -> int:
    import json

    from .analysis import conflict_graph

    graph = conflict_graph(design)
    partition = None
    if shards:
        from .shard import partition_design

        partition = partition_design(design, shards, graph=graph)
    if fmt == "dot":
        print(_conflict_dot(graph, partition))
        return 0
    if fmt == "json":
        payload = {
            "schema": "repro-conflicts-v1",
            "design": design.name,
            "conflicts": graph.as_dict(),
            "partition": partition.as_dict() if partition else None,
        }
        print(json.dumps(payload, indent=2))
        return 0
    print(f"conflict graph of {design.name}: {len(graph.rules)} rule(s), "
          f"{len(graph.edges)} conflicting pair(s)")
    for pair, reasons in sorted(graph.edges.items(),
                                key=lambda kv: sorted(kv[0])):
        a, b = sorted(pair)
        print(f"  {a} -- {b}")
        for reason in reasons:
            print(f"      {reason}")
    if partition is not None:
        print()
        print(partition.summary())
    return 0


def cmd_report(args) -> int:
    streams_path = getattr(args, "streams", None)
    if streams_path:
        from .harness.streams import (render_stream_summary,
                                      summarize_stream_log)

        summary = summarize_stream_log(streams_path)
        if getattr(args, "format", "text") == "json":
            import json

            print(json.dumps(summary, indent=2, sort_keys=True))
        else:
            print(render_stream_summary(summary))
        return 0
    if not args.design:
        raise SystemExit("a design name is required (or --streams PATH)")
    design = _get_design(args.design)
    if getattr(args, "conflicts", False):
        return _report_conflicts(design, getattr(args, "format", "text"),
                                 getattr(args, "shards", 0))
    if getattr(args, "format", "text") == "dot":
        raise SystemExit("--format dot requires --conflicts")
    if getattr(args, "format", "text") == "json":
        import json

        from .analysis import analyze, conflict_graph, lint_design

        analysis = analyze(design)
        findings = lint_design(design,
                               env=_default_env(design, None, 100))
        payload = {
            "schema": "repro-report-v1",
            "design": design.name,
            "registers": len(design.registers),
            "rules": len(design.rules),
            "schedule": list(design.scheduler),
            "analysis": analysis.summary(),
            "conflicts": conflict_graph(design).as_dict(),
            "findings": [finding.as_dict() for finding in findings],
        }
        print(json.dumps(payload, indent=2))
        return 0
    from .analysis.report import design_report

    print(design_report(design))
    return 0


#: Exit-threshold ranks for ``repro lint --fail-on``.
_SEVERITY_RANK = {"note": 0, "warning": 1, "error": 2}


def cmd_lint(args) -> int:
    from .analysis import (lint_design, render_json, render_sarif,
                           render_text, worst_severity)

    design = _get_design(args.design)
    findings = lint_design(design, env=_default_env(design, None, 100))
    renderer = {"text": render_text, "json": render_json,
                "sarif": render_sarif}[args.format]
    print(renderer(findings, design.name))
    worst = worst_severity(findings)
    if args.fail_on != "never" and worst is not None and \
            _SEVERITY_RANK[worst] >= _SEVERITY_RANK[args.fail_on]:
        return 1
    return 0


def cmd_synth(args) -> int:
    from .rtl.stats import stats_report

    print(stats_report(_get_design(args.design)))
    return 0


def cmd_debug(args) -> int:
    from .debug.shell import DebugShell

    design = _get_design(args.design)
    env = _default_env(design, args.program, args.arg)
    DebugShell(design, env).cmdloop()
    return 0


def cmd_asm(args) -> int:
    from .riscv import assemble

    builders = _programs()
    if args.program in builders:
        source = builders[args.program](args.arg)
    else:
        with open(args.program) as handle:
            source = handle.read()
    program = assemble(source)
    print(program.dump())
    print(f"# {len(program.words)} words, labels: "
          f"{', '.join(sorted(program.labels))}")
    return 0


def cmd_run(args) -> int:
    design = _get_design(args.design)
    env = _default_env(design, args.program, args.arg)
    sim = make_simulator(design, backend=args.backend, env=env)
    started = time.perf_counter()
    if design.name.startswith("rv32"):
        devices = [d for d in env.devices if hasattr(d, "halted")]
        sim.run_until(lambda _s: all(d.halted for d in devices),
                      max_cycles=args.cycles)
        elapsed = time.perf_counter() - started
        for i, device in enumerate(devices):
            print(f"core {i}: result = {device.tohost}"
                  + (f", outputs = {device.outputs}" if device.outputs
                     else ""))
    else:
        sim.run(args.cycles)
        elapsed = time.perf_counter() - started
        state = sim.state_dict()
        shown = dict(list(state.items())[:12])
        print(f"state after {args.cycles} cycles: {shown}"
              + (" ..." if len(state) > 12 else ""))
    rate = sim.cycle / elapsed if elapsed else float("inf")
    print(f"[{args.backend}] {sim.cycle} cycles in {elapsed:.3f}s "
          f"({rate:,.0f} cycles/s)")
    return 0


def cmd_trace(args) -> int:
    from .debug.trace import CycleTracer

    design = _get_design(args.design)
    env = _default_env(design, args.program, args.arg)
    sim = make_simulator(design, backend=args.backend, env=env)
    tracer = CycleTracer(sim)
    for record in tracer.run(args.cycles):
        print(record)
    print("\ncommit counts:", tracer.summary())
    return 0


def cmd_bench(args) -> int:
    design = _get_design(args.design)
    backends = args.backend.split(",") if args.backend else \
        ["cuttlesim", "rtl-cycle"]
    rates = {}
    for backend in backends:
        env = _default_env(design, args.program, args.arg)
        sim = make_simulator(design, backend=backend, env=env)
        sim.run(min(200, args.cycles // 10))  # warmup
        started = time.perf_counter()
        sim.run(args.cycles)
        elapsed = time.perf_counter() - started
        rates[backend] = args.cycles / elapsed
        print(f"{backend:<14} {rates[backend]:>12,.0f} cycles/s")
    if "cuttlesim" in rates and "rtl-cycle" in rates:
        print(f"{'speedup':<14} {rates['cuttlesim'] / rates['rtl-cycle']:>11.2f}x")
    return 0


def _cmd_parallel_lockstep(args) -> int:
    """``repro parallel --batch B``: trials as lanes of one vectorized
    model instead of one process each (poke sweep, not schedule sweep)."""
    import json

    from .harness.lockstep import lockstep_sweep, per_process_baseline

    design = _get_design(args.design)
    cache = None if args.no_cache else True
    env_factory = lambda: _default_env(design, args.program, args.arg)  # noqa: E731

    baseline = None
    if args.compare_serial:
        baseline = per_process_baseline(
            design, args.trials, args.cycles, seed=args.seed,
            env_factory=env_factory, workers=args.workers,
            timeout=args.timeout, cache=cache)
        baseline.raise_on_failure()

    report = lockstep_sweep(
        design, args.trials, args.cycles, batch=args.batch, seed=args.seed,
        env_factory=env_factory, backend=args.batch_backend, cache=cache)
    if baseline is not None:
        report.serial_seconds = baseline.wall_seconds

    payload = report.as_dict()
    payload["design"] = args.design
    payload["cycles_per_trial"] = args.cycles
    payload["batch"] = {"lanes": args.batch, "backend": args.batch_backend,
                        "model": report.results[0].meta.get("backend")}
    matches = None
    if baseline is not None:
        matches = report.observations == baseline.observations
        payload["matches_fleet"] = matches

    backend = payload["batch"]["model"]
    print(f"{args.trials} trial(s) on {backend}, "
          f"wall {report.wall_seconds:.3f}s"
          + (f"; fleet baseline {baseline.wall_seconds:.3f}s "
             f"({report.speedup_vs_serial:.2f}x)" if baseline else ""))
    if payload.get("cache"):
        cache_info = payload["cache"]
        print(f"model cache: {cache_info['hits']} hit(s), "
              f"{cache_info['misses']} miss(es)")
    if matches is not None:
        print("batched == per-process fleet:", "yes" if matches else "NO")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, default=repr)
        print(f"report written to {args.json}")
    if report.failures or matches is False:
        return 1
    return 0


def _cmd_parallel_shards(args) -> int:
    """``repro parallel --shards K``: run the sharded bulk-synchronous
    tier, optionally byte-checking it against the scalar simulator."""
    import json
    import os

    from .shard import ShardedSimulator

    design = _get_design(args.design)
    cache = None if args.no_cache else True

    serial_seconds = serial_state = None
    if args.compare_serial:
        serial_env = _default_env(design, args.program, args.arg)
        serial = make_simulator(design, backend="cuttlesim",
                                env=serial_env, cache=cache)
        started = time.perf_counter()
        serial.run(args.cycles)
        serial_seconds = time.perf_counter() - started
        serial_state = serial.state_dict()

    env = _default_env(design, args.program, args.arg)
    sim = ShardedSimulator(design, args.shards, env=env, cache=cache,
                           mode=args.shard_mode)
    started = time.perf_counter()
    sim.run(args.cycles)
    wall = time.perf_counter() - started
    state = sim.state_dict()
    stats, partition, mode = sim.stats, sim.partition, sim.mode
    sim.close()

    rate = args.cycles / wall if wall else float("inf")
    payload = {
        "schema": "repro-shard-run-v1",
        "design": args.design,
        "cycles": args.cycles,
        "shards": partition.n_shards,
        "mode": mode,
        "cpus": os.cpu_count(),
        "wall_seconds": round(wall, 6),
        "cycles_per_second": round(rate, 1),
        "stats": stats.as_dict(),
        "partition": partition.as_dict(),
    }
    print(f"[sharded k={partition.n_shards} {mode}] {args.cycles} cycles "
          f"in {wall:.3f}s ({rate:,.0f} cycles/s)")
    fraction = stats.replay_fraction
    print(f"clean {stats.clean_cycles}, replayed {stats.replay_cycles}"
          + (f" ({fraction:.1%})" if fraction is not None else ""))
    identical = True
    if serial_state is not None:
        identical = state == serial_state
        payload["serial_seconds"] = round(serial_seconds, 6)
        payload["matches_serial"] = identical
        print(f"serial {serial_seconds:.3f}s; sharded == serial: "
              + ("yes" if identical else "NO"))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"report written to {args.json}")
    return 0 if identical else 1


def cmd_parallel(args) -> int:
    import json

    from .debug.randomize import randomized_sweep

    stream_log = getattr(args, "stream_log", None)
    if stream_log and (args.batch or args.shards):
        raise SystemExit("--stream-log applies to the trial sweep only; "
                         "it cannot be combined with --batch or --shards")
    if args.shards:
        if args.batch:
            raise SystemExit("--shards and --batch are mutually exclusive")
        return _cmd_parallel_shards(args)
    if args.batch:
        return _cmd_parallel_lockstep(args)

    design = _get_design(args.design)
    cache = None if args.no_cache else True
    if stream_log:
        if not design.streams:
            raise SystemExit(
                f"design {args.design!r} declares no streams; --stream-log "
                f"needs a StreamFifo-based design (try dsp, router, "
                f"prodcons)")
        import itertools
        import os

        from .harness.streams import (StreamObserver, StreamOracleError,
                                      check_stream_events)

        _trial_counter = itertools.count()

        def env_factory():
            # One NDJSON file per trial: the pid disambiguates forked
            # fleet workers, the counter disambiguates in-process trials.
            env = _default_env(design, args.program, args.arg)
            env.add_device(StreamObserver(
                design, log_dir=stream_log,
                log_label=f"p{os.getpid()}-t{next(_trial_counter)}"))
            return env

        def observe(model, env):
            # Flush+close the log before the (possibly forked) trial
            # returns, so no tail event is lost in a worker teardown —
            # then hold the trial to the stream oracles.  Stream designs
            # are schedule-*sensitive* (EHR forwarding depends on rule
            # order), so final states legitimately differ across trials;
            # the invariant randomization must preserve is the stream
            # discipline, not byte-identical state.
            violations = []
            for device in env.devices:
                if isinstance(device, StreamObserver):
                    device.close()
                    violations.extend(
                        check_stream_events(design, device.events))
            if violations:
                raise StreamOracleError(design.name, violations)
            return model.state_dict()
    else:
        env_factory = lambda: _default_env(design, args.program, args.arg)  # noqa: E731
        observe = lambda model, env: model.state_dict()  # noqa: E731

    serial_seconds = None
    if args.compare_serial:
        started = time.perf_counter()
        serial = randomized_sweep(
            design, env_factory,
            until=lambda model, env: model.cycle >= args.cycles,
            observe=observe,
            trials=args.trials, seed=args.seed, max_cycles=args.cycles + 1,
            workers=1, cache=cache)
        serial.raise_on_failure()
        serial_seconds = time.perf_counter() - started

    report = randomized_sweep(
        design, env_factory,
        until=lambda model, env: model.cycle >= args.cycles,
        observe=observe,
        trials=args.trials, seed=args.seed, max_cycles=args.cycles + 1,
        workers=args.workers, timeout=args.timeout, cache=cache)
    report.serial_seconds = serial_seconds

    payload = report.as_dict()
    payload["design"] = args.design
    payload["cycles_per_trial"] = args.cycles
    observations = report.observations
    order_independent = bool(observations) and \
        all(obs == observations[0] for obs in observations)
    payload["order_independent"] = order_independent
    if args.compare_serial:
        identical = observations == serial.observations
        payload["matches_serial"] = identical

    for result in report.results:
        rate = result.cycles_per_second
        print(f"trial {result.index:>3}  {result.status:<8}"
              f"{f'{rate:,.0f} cycles/s' if rate else '-':>20}")
    print(f"{report.workers} worker(s), wall {report.wall_seconds:.3f}s"
          + (f", serial {serial_seconds:.3f}s "
             f"({report.speedup_vs_serial:.2f}x)" if serial_seconds else ""))
    if payload.get("cache"):
        cache_info = payload["cache"]
        print(f"model cache: {cache_info['hits']} hit(s), "
              f"{cache_info['misses']} miss(es)")
    print("order-independent:", "yes" if order_independent else "NO"
          + (" (informational: stream designs are schedule-sensitive; "
             "trials are gated on the stream oracles instead)"
             if stream_log else ""))
    if stream_log:
        import glob
        n_logs = len(glob.glob(os.path.join(
            stream_log, f"{design.name}-*.ndjson")))
        print(f"stream logs: {n_logs} repro-stream-log-v1 file(s) in "
              f"{stream_log}/ (inspect with `repro report --streams PATH`)")
    if args.compare_serial:
        print("parallel == serial:", "yes" if payload["matches_serial"]
              else "NO")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, default=repr)
        print(f"report written to {args.json}")
    if report.failures or (not order_independent and not stream_log):
        return 1
    return 0


def _fuzz_report(report, args) -> None:
    import json

    payload = report.as_dict()
    rate = payload["seeds_per_second"]
    print(f"[{payload['dispatch']}] executed {payload['executed_this_run']} "
          f"job(s) in {payload['wall_seconds']:.3f}s"
          + (f" ({rate:.2f} seeds/s)" if rate else ""))
    print(f"coverage: {payload['coverage_features']} feature(s) over "
          f"{payload['rules_covered']} rule structure(s); "
          f"corpus {payload['corpus_entries']} entr(ies)")
    print(f"buckets: {payload['buckets']} "
          f"({payload['unreduced_buckets']} unreduced), "
          f"divergences {payload['divergences']}, errors {payload['errors']}")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"report written to {args.json}")


def _parse_seed_range(value: str):
    start, _, stop = value.partition(":")
    try:
        return int(start or 0), int(stop)
    except ValueError:
        raise SystemExit(f"bad --seeds {value!r}; expected START:STOP")


def cmd_fuzz_run(args) -> int:
    from .fuzz import CampaignStore, run_campaign

    start, stop = _parse_seed_range(args.seeds)
    config = {
        "seed_start": start, "seed_stop": stop, "cycles": args.cycles,
        "opts": [int(o) for o in args.opts.split(",")],
        "include_rtl": not args.no_rtl,
        "include_simplified": not args.no_simplified,
        "schedule_seeds": args.schedule_seeds,
        "mutate": args.mutate, "mutation_depth": args.mutation_depth,
        "batch": args.batch, "batch_backend": args.batch_backend,
        "pass_prefixes": args.pass_oracle,
        "lint_oracle": args.lint_oracle,
        "shard_oracle": args.shard_oracle,
        "stream_oracle": args.stream_oracle,
    }
    try:
        store = CampaignStore.create(args.state, config, force=args.force)
    except FileExistsError as exc:
        raise SystemExit(str(exc))
    report = run_campaign(store, workers=args.workers, server=args.server,
                          batch=args.jobs_per_batch,
                          progress=None if args.quiet else print)
    _fuzz_report(report, args)
    return 1 if store.bucket_slugs() else 0


def cmd_fuzz_resume(args) -> int:
    from .fuzz import CampaignStore, run_campaign

    store = CampaignStore.open(args.state)
    if args.seeds:
        _, stop = _parse_seed_range(args.seeds)
        store.config["seed_stop"] = max(stop,
                                        int(store.config["seed_stop"]))
        import json as _json
        import os as _os

        with open(_os.path.join(store.root, "config.json"), "w") as handle:
            _json.dump(store.config, handle, indent=2, sort_keys=True)
    report = run_campaign(store, workers=args.workers, server=args.server,
                          batch=args.jobs_per_batch,
                          progress=None if args.quiet else print)
    _fuzz_report(report, args)
    return 1 if store.bucket_slugs() else 0


def cmd_fuzz_triage(args) -> int:
    import json

    from .fuzz import CampaignStore, triage_table

    rows = triage_table(CampaignStore.open(args.state))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(rows, handle, indent=2, sort_keys=True)
    if not rows:
        print("no buckets: the campaign found no divergences or crashes")
        return 0
    print(f"{'count':>6}  {'reduced':<8}{'signature'}")
    for row in rows:
        print(f"{row['count']:>6}  "
              f"{'yes' if row['reduced'] else 'no':<8}{row['signature']}")
    return 0


def cmd_fuzz_reduce(args) -> int:
    from .fuzz import CampaignStore, reduce_buckets

    store = CampaignStore.open(args.state)
    done = reduce_buckets(store, budget=args.budget, only=args.bucket,
                          progress=None if args.quiet else print)
    if not done:
        print("nothing to reduce: no unreduced buckets")
    for slug, bucket in done:
        print(f"{slug}: {bucket['n_rules']} rule(s), "
              f"repro at {bucket['repro']}")
    return 0


def cmd_fuzz(args) -> int:
    return args.fuzz_fn(args)


def cmd_serve(args) -> int:
    import asyncio

    from .server import ServeDaemon

    daemon = ServeDaemon(
        args.tcp if args.tcp else args.socket,
        workers=args.workers, queue_limit=args.queue_limit,
        batch_max=args.batch_max, default_timeout=args.timeout,
        max_attempts=args.max_attempts, drain_timeout=args.drain_timeout,
        allow_pickle=args.allow_pickle, cache_dir=args.cache_dir,
        quiet=args.quiet)
    return asyncio.run(daemon.run())


def cmd_submit(args) -> int:
    import json

    from .server import ServeClient, ServeError, ServerDraining, \
        ServerOverloaded

    try:
        with ServeClient(args.tcp if args.tcp else args.socket) as client:
            record = client.submit(
                args.design, opt=args.opt, cycles=args.cycles,
                seed=args.seed, priority=args.priority,
                timeout=args.timeout, program=args.program,
                program_arg=args.arg)
    except ServerOverloaded as exc:
        print(f"overloaded: {exc}", file=sys.stderr)
        return 2
    except (ServerDraining, ServeError, OSError) as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(record, indent=2))
    return 0 if record.get("status") == "ok" else 1


def cmd_stats(args) -> int:
    from .server import ServeClient, ServeError

    try:
        with ServeClient(args.tcp if args.tcp else args.socket) as client:
            response = client.stats()
    except (ServeError, OSError) as exc:
        print(f"stats failed: {exc}", file=sys.stderr)
        return 1
    print(response["text"], end="")
    return 0


def _add_server_address(parser) -> None:
    from .server.protocol import default_socket_path

    parser.add_argument("--socket", default=default_socket_path(),
                        metavar="PATH", help="Unix socket path "
                        "(default: %(default)s)")
    parser.add_argument("--tcp", default=None, metavar="HOST:PORT",
                        help="TCP address instead of a Unix socket")


def build_parser() -> argparse.ArgumentParser:
    from . import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cuttlesim reproduction toolchain (ASPLOS 2021)")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list built-in designs").set_defaults(
        fn=cmd_list)

    for name, fn, help_text in (
        ("pretty", cmd_pretty, "pretty-print a design (Koika syntax)"),
        ("verilog", cmd_verilog, "emit Verilog for a design"),
        ("synth", cmd_synth, "area/critical-path estimates, both lowerings"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("design")
        p.set_defaults(fn=fn)

    p = sub.add_parser("report", help="static-analysis report for a design")
    p.add_argument("design", nargs="?", default=None)
    p.add_argument("--format", default="text",
                   choices=("text", "json", "dot"),
                   help="text report or a repro-report-v1 JSON document "
                        "(conflict graph + lint findings); dot needs "
                        "--conflicts")
    p.add_argument("--streams", default=None, metavar="PATH",
                   help="summarize a repro-stream-log-v1 NDJSON transaction "
                        "log (per-stream pushes/pops/stalls/throughput) "
                        "instead of reporting on a design; --format json "
                        "prints the raw summary")
    p.add_argument("--conflicts", action="store_true",
                   help="dump the rule-conflict graph instead of the full "
                        "report (text, repro-conflicts-v1 JSON, or "
                        "Graphviz dot)")
    p.add_argument("--shards", type=int, default=0, metavar="K",
                   help="with --conflicts: also partition into K shards "
                        "(dot colors nodes by shard and draws cut edges "
                        "red; json embeds the partition)")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("lint", help="static lint: port conflicts, dead "
                                    "rules/writes, width and liveness "
                                    "checks")
    p.add_argument("design")
    p.add_argument("--format", default="text",
                   choices=("text", "json", "sarif"),
                   help="output format (default: %(default)s)")
    p.add_argument("--fail-on", default="error", metavar="SEVERITY",
                   choices=("error", "warning", "note", "never"),
                   help="exit nonzero when a finding at or above this "
                        "severity is present (default: %(default)s)")
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser("model", help="print the generated Cuttlesim model")
    p.add_argument("design")
    p.add_argument("--opt", type=int, default=5, choices=range(6))
    p.add_argument("--instrument", action="store_true")
    p.add_argument("--simplify", action="store_true",
                   help="run the AST simplifier before codegen")
    p.add_argument("--stop-after", default=None, metavar="PASS",
                   help="stop the pass pipeline after PASS and print the "
                        "Python emitted from the prefix (with --ir: the IR "
                        "at that point)")
    p.add_argument("--ir", action="store_true",
                   help="print the mid-level IR instead of Python source")
    p.set_defaults(fn=cmd_model)

    p = sub.add_parser("asm", help="assemble a program, print the listing")
    p.add_argument("program", help="built-in name or path to a .s file")
    p.add_argument("--arg", type=int, default=100,
                   help="parameter for built-in programs (e.g. primes limit)")
    p.set_defaults(fn=cmd_asm)

    p = sub.add_parser("debug", help="interactive gdb-style debugger")
    p.add_argument("design")
    p.add_argument("--program", default=None)
    p.add_argument("--arg", type=int, default=100)
    p.set_defaults(fn=cmd_debug)

    p = sub.add_parser("parallel", help="randomized-schedule sweep on the "
                                        "parallel simulation fleet")
    p.add_argument("design")
    p.add_argument("--trials", type=int, default=16)
    p.add_argument("--workers", type=int, default=None,
                   help="worker processes (default: all cores)")
    p.add_argument("--cycles", type=int, default=2_000,
                   help="cycles per trial")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--timeout", type=float, default=None,
                   help="per-trial timeout in seconds")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the repro-fleet-v1 report (BENCH_*.json)")
    p.add_argument("--compare-serial", action="store_true",
                   help="also run serially; report speedup and equality "
                        "(with --batch: per-process fleet baseline)")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the content-addressed model cache")
    p.add_argument("--batch", type=int, default=0, metavar="B",
                   help="run trials as B lanes of one batched lockstep "
                        "model (poke sweep) instead of one process each")
    p.add_argument("--batch-backend", default="auto",
                   choices=("auto", "numpy", "list"),
                   help="lane storage for --batch (default: %(default)s)")
    p.add_argument("--shards", type=int, default=0, metavar="K",
                   help="run the sharded bulk-synchronous tier (K shard "
                        "models under a cycle barrier) instead of the "
                        "trial sweep; with --compare-serial the final "
                        "state is byte-checked against the scalar "
                        "simulator; --json writes repro-shard-run-v1")
    p.add_argument("--shard-mode", default="auto",
                   choices=("auto", "local", "process"),
                   help="shard transport for --shards "
                        "(default: %(default)s)")
    p.add_argument("--stream-log", default=None, metavar="DIR",
                   help="attach a StreamObserver to every trial and write "
                        "one repro-stream-log-v1 NDJSON transaction log "
                        "per trial under DIR (stream designs only; not "
                        "with --batch/--shards)")
    p.add_argument("--program", default=None,
                   help="built-in RISC-V program (rv32 designs)")
    p.add_argument("--arg", type=int, default=100)
    p.set_defaults(fn=cmd_parallel)

    p = sub.add_parser("fuzz", help="coverage-guided differential fuzzing "
                                    "campaigns with triage and reduction")
    fuzz_sub = p.add_subparsers(dest="fuzz_command", required=True)

    class _RenamedBatchAction(argparse.Action):
        """``--batch`` once meant "jobs per persisted checkpoint batch" and
        was silently repurposed as the lockstep lane width when the batched
        tier landed.  On subcommands where the lane-width meaning does not
        exist, old-style usage is unambiguous — fail with a pointer to the
        renamed flag instead of an "unrecognized arguments" surprise."""

        def __call__(self, parser, namespace, values, option_string=None):
            parser.error(
                "--batch changed meaning: it now sets the batched lockstep "
                "lane width and only applies to `repro fuzz run`.  For jobs "
                "per persisted checkpoint batch (the old meaning of "
                "--batch), use --jobs-per-batch N.")

    def _fuzz_common(fp, dispatch: bool = True) -> None:
        fp.add_argument("--state", default="fuzz-state", metavar="DIR",
                        help="campaign state directory "
                             "(default: %(default)s)")
        fp.add_argument("--quiet", action="store_true")
        if dispatch:
            fp.add_argument("--workers", type=int, default=1,
                            help="1 = serial in-process; >1 = simulation "
                                 "fleet (default: %(default)s)")
            fp.add_argument("--server", default=None, metavar="ADDR",
                            help="dispatch batches to a running `repro "
                                 "serve` daemon at this address")
            fp.add_argument("--jobs-per-batch", type=int, default=None,
                            help="jobs per persisted batch")
            fp.add_argument("--json", default=None, metavar="PATH",
                            help="write the repro-fuzz-v1 BENCH report")

    fp = fuzz_sub.add_parser("run", help="start a new campaign")
    _fuzz_common(fp)
    fp.add_argument("--seeds", default="0:50", metavar="START:STOP",
                    help="generator seed range (default: %(default)s)")
    fp.add_argument("--cycles", type=int, default=32,
                    help="cycles per differential check")
    fp.add_argument("--opts", default="0,1,2,3,4,5",
                    help="Cuttlesim opt levels to diff (comma-separated)")
    fp.add_argument("--no-rtl", action="store_true",
                    help="skip the RTL cycle simulator backend")
    fp.add_argument("--no-simplified", action="store_true",
                    help="skip the simplified-O5 backend")
    fp.add_argument("--schedule-seeds", type=int, default=2,
                    help="randomized-schedule trials per design")
    fp.add_argument("--batch", type=int, default=0, metavar="B",
                    help="also diff a B-lane batched lockstep backend "
                         "against scalar O2 (0 = off; this flag previously "
                         "meant jobs per checkpoint — that is now "
                         "--jobs-per-batch)")
    fp.add_argument("--batch-backend", default="auto",
                    choices=("auto", "numpy", "list"),
                    help="lane storage for --batch (default: %(default)s)")
    fp.add_argument("--pass-oracle", action="store_true",
                    help="also diff every pass-pipeline prefix "
                         "(--stop-after each pass), localizing a "
                         "miscompile to the pass that introduced it")
    fp.add_argument("--lint-oracle", action="store_true",
                    help="also replay each design's static lint claims "
                         "against an executed debug trace; refutations "
                         "bucket as lint-unsound failures")
    fp.add_argument("--shard-oracle", action="store_true",
                    help="also diff local-mode sharded simulators (K=2,3) "
                         "against the scalar reference; divergences "
                         "bucket as sharded-k* failures")
    fp.add_argument("--stream-oracle", action="store_true",
                    help="also check stream invariants (no-drop, ordering, "
                         "conservation, backpressure liveness) over each "
                         "design's transaction log; violations bucket as "
                         "stream:{property}:{stream} failures")
    fp.add_argument("--mutate", type=int, default=2,
                    help="mutants queued per interesting corpus entry")
    fp.add_argument("--mutation-depth", type=int, default=2,
                    help="max mutation chain length")
    fp.add_argument("--force", action="store_true",
                    help="overwrite an existing campaign directory")
    fp.set_defaults(fn=cmd_fuzz, fuzz_fn=cmd_fuzz_run)

    fp = fuzz_sub.add_parser("resume", help="continue a campaign from its "
                                            "saved RNG cursor")
    _fuzz_common(fp)
    fp.add_argument("--seeds", default=None, metavar="START:STOP",
                    help="extend the campaign's seed range")
    fp.add_argument("--batch", action=_RenamedBatchAction, metavar="N",
                    help=argparse.SUPPRESS)
    fp.set_defaults(fn=cmd_fuzz, fuzz_fn=cmd_fuzz_resume)

    fp = fuzz_sub.add_parser("triage", help="list deduplicated failure "
                                            "buckets")
    _fuzz_common(fp, dispatch=False)
    fp.add_argument("--json", default=None, metavar="PATH")
    fp.set_defaults(fn=cmd_fuzz, fuzz_fn=cmd_fuzz_triage)

    fp = fuzz_sub.add_parser("reduce", help="delta-debug each bucket to a "
                                            "minimal repro script")
    _fuzz_common(fp, dispatch=False)
    fp.add_argument("--bucket", default=None, metavar="SLUG",
                    help="reduce one bucket instead of all unreduced ones")
    fp.add_argument("--budget", type=int, default=400,
                    help="max reduction check runs per bucket")
    fp.set_defaults(fn=cmd_fuzz, fuzz_fn=cmd_fuzz_reduce)

    p = sub.add_parser("serve", help="persistent batch-simulation daemon "
                                     "(repro-serve-v1)")
    _add_server_address(p)
    p.add_argument("--workers", type=int, default=2,
                   help="resident worker processes (default: %(default)s)")
    p.add_argument("--queue-limit", type=int, default=64,
                   help="queue depth before 'overloaded' backpressure")
    p.add_argument("--batch-max", type=int, default=4,
                   help="max compatible jobs dispatched to a worker at once")
    p.add_argument("--timeout", type=float, default=None,
                   help="default per-job timeout in seconds")
    p.add_argument("--max-attempts", type=int, default=2,
                   help="attempts per job before a crash is final")
    p.add_argument("--drain-timeout", type=float, default=120.0,
                   help="max seconds to finish jobs on SIGTERM")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="model-cache directory (sets REPRO_MODEL_CACHE)")
    p.add_argument("--allow-pickle", action="store_true",
                   help="accept pickled designs (trusted clients only)")
    p.add_argument("--quiet", action="store_true")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("submit", help="submit one job to a running daemon")
    p.add_argument("design")
    _add_server_address(p)
    p.add_argument("--opt", type=int, default=5, choices=range(6))
    p.add_argument("--cycles", type=int, default=1_000)
    p.add_argument("--seed", type=int, default=None,
                   help="randomized-schedule seed (omit for in-order)")
    p.add_argument("--priority", type=int, default=0)
    p.add_argument("--timeout", type=float, default=None)
    p.add_argument("--program", default=None,
                   help="built-in RISC-V program (rv32 designs)")
    p.add_argument("--arg", type=int, default=100)
    p.set_defaults(fn=cmd_submit)

    p = sub.add_parser("stats", help="print a running daemon's Prometheus "
                                     "metrics")
    _add_server_address(p)
    p.set_defaults(fn=cmd_stats)

    for name, fn, default_cycles in (("run", cmd_run, 200_000),
                                     ("trace", cmd_trace, 30),
                                     ("bench", cmd_bench, 5_000)):
        p = sub.add_parser(name)
        p.add_argument("design")
        p.add_argument("--backend", default="cuttlesim" if name != "bench"
                       else None)
        p.add_argument("--cycles", type=int, default=default_cycles)
        p.add_argument("--program", default=None,
                       help="built-in RISC-V program (rv32 designs)")
        p.add_argument("--arg", type=int, default=100)
        p.set_defaults(fn=fn)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
