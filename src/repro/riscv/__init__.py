"""RISC-V substrate: RV32I encoder/assembler, golden model, programs."""

from .assembler import Assembler, Program, assemble
from .disasm import disassemble, disassemble_program
from .encoding import NOP, Decoded, decode, reg_number
from .golden import OUTPUT_ADDR, TOHOST_ADDR, GoldenModel
from . import programs

__all__ = [
    "Assembler", "Program", "assemble", "disassemble",
    "disassemble_program", "NOP", "Decoded", "decode",
    "reg_number", "OUTPUT_ADDR", "TOHOST_ADDR", "GoldenModel", "programs",
]
