"""A small two-pass RV32I assembler.

Supports the RV32I user subset, labels, ``.word``/``.org`` directives,
character-friendly immediates (decimal, hex, ``%lo``/``%hi``), and the
common pseudo-instructions (``li``, ``la``, ``mv``, ``nop``, ``j``,
``call``, ``ret``, ``beqz``/``bnez``, ``not``/``neg``/``seqz``/``snez``).

This removes the cross-compiler gate: all benchmark programs used by the
paper reproduction are assembled in-repo.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..errors import AssemblerError
from . import encoding as enc

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_MEM_RE = re.compile(r"^(-?[\w%().+]*)\(([\w]+)\)$")


def _parse_imm(token: str, labels: Dict[str, int]) -> int:
    token = token.strip()
    if token.startswith("%lo(") and token.endswith(")"):
        value = _parse_imm(token[4:-1], labels)
        low = value & 0xFFF
        return low - 0x1000 if low >= 0x800 else low
    if token.startswith("%hi(") and token.endswith(")"):
        value = _parse_imm(token[4:-1], labels)
        return ((value + 0x800) >> 12) & 0xFFFFF
    if token in labels:
        return labels[token]
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError(f"cannot parse immediate {token!r}")


def _split_operands(rest: str) -> List[str]:
    return [part.strip() for part in rest.split(",")] if rest.strip() else []


class _Line:
    def __init__(self, mnemonic: str, operands: List[str], source: str,
                 lineno: int):
        self.mnemonic = mnemonic
        self.operands = operands
        self.source = source
        self.lineno = lineno


class Program:
    """An assembled program: a dict of word-addressed memory contents."""

    def __init__(self, words: Dict[int, int], labels: Dict[str, int],
                 listing: List[Tuple[int, int, str]]):
        self.words = words  # byte address (aligned) -> 32-bit word
        self.labels = labels
        self.listing = listing

    def memory_image(self) -> Dict[int, int]:
        return dict(self.words)

    def size_bytes(self) -> int:
        return (max(self.words) + 4) if self.words else 0

    def dump(self) -> str:
        return "\n".join(f"{addr:08x}: {word:08x}  {src}"
                         for addr, word, src in self.listing)


class Assembler:
    def __init__(self, max_reg: int = 32):
        self.max_reg = max_reg

    # -- public ------------------------------------------------------------
    def assemble(self, source: str, base: int = 0) -> Program:
        lines = self._parse(source)
        labels = self._layout(lines, base)
        words: Dict[int, int] = {}
        listing: List[Tuple[int, int, str]] = []
        pc = base
        for line in lines:
            if line.mnemonic == ".org":
                pc = _parse_imm(line.operands[0], labels)
                continue
            if line.mnemonic == ".word":
                for op in line.operands:
                    words[pc] = _parse_imm(op, labels) & 0xFFFFFFFF
                    listing.append((pc, words[pc], line.source))
                    pc += 4
                continue
            for word in self._encode(line, pc, labels):
                words[pc] = word
                listing.append((pc, word, line.source))
                pc += 4
        return Program(words, labels, listing)

    # -- passes ------------------------------------------------------------
    def _parse(self, source: str) -> List[_Line]:
        lines: List[_Line] = []
        for lineno, raw in enumerate(source.splitlines(), start=1):
            text = raw.split("#")[0].split("//")[0].strip()
            while True:
                match = _LABEL_RE.match(text)
                if not match:
                    break
                lines.append(_Line(".label", [match.group(1)], raw, lineno))
                text = text[match.end():].strip()
            if not text:
                continue
            parts = text.split(None, 1)
            mnemonic = parts[0].lower()
            operands = _split_operands(parts[1] if len(parts) > 1 else "")
            lines.append(_Line(mnemonic, operands, raw.strip(), lineno))
        return lines

    def _instr_length(self, line: _Line) -> int:
        """Words emitted by one source line (pseudo-expansion aware)."""
        mnemonic = line.mnemonic
        if mnemonic in (".label", ".org"):
            return 0
        if mnemonic == ".word":
            return len(line.operands)
        if mnemonic in ("li", "la"):
            return 2  # conservatively always lui+addi (stable layout)
        if mnemonic == "call":
            return 1
        return 1

    def _layout(self, lines: List[_Line], base: int) -> Dict[str, int]:
        labels: Dict[str, int] = {}
        pc = base
        for line in lines:
            if line.mnemonic == ".label":
                name = line.operands[0]
                if name in labels:
                    raise AssemblerError(f"duplicate label {name!r} "
                                         f"(line {line.lineno})")
                labels[name] = pc
            elif line.mnemonic == ".org":
                pc = _parse_imm(line.operands[0], {})
            else:
                pc += 4 * self._instr_length(line)
        return labels

    # -- encoding ----------------------------------------------------------
    def _reg(self, token: str) -> int:
        return enc.reg_number(token, self.max_reg)

    def _encode(self, line: _Line, pc: int,
                labels: Dict[str, int]) -> List[int]:
        mnemonic, ops = line.mnemonic, line.operands
        if mnemonic == ".label":
            return []
        try:
            return self._encode_inner(mnemonic, ops, pc, labels)
        except AssemblerError as exc:
            raise AssemblerError(f"line {line.lineno}: {line.source!r}: {exc}")

    def _encode_inner(self, mnemonic: str, ops: List[str], pc: int,
                      labels: Dict[str, int]) -> List[int]:
        # Pseudo-instructions first.
        if mnemonic == "nop":
            return [enc.NOP]
        if mnemonic == "mv":
            return [enc.encode_i(enc.OP_IMM, 0, self._reg(ops[0]),
                                 self._reg(ops[1]), 0)]
        if mnemonic == "not":
            return [enc.encode_i(enc.OP_IMM, 0b100, self._reg(ops[0]),
                                 self._reg(ops[1]), -1)]
        if mnemonic == "neg":
            return [enc.encode_r(enc.OP_REG, 0, 0b0100000, self._reg(ops[0]),
                                 0, self._reg(ops[1]))]
        if mnemonic == "seqz":
            return [enc.encode_i(enc.OP_IMM, 0b011, self._reg(ops[0]),
                                 self._reg(ops[1]), 1)]
        if mnemonic == "snez":
            return [enc.encode_r(enc.OP_REG, 0b011, 0, self._reg(ops[0]),
                                 0, self._reg(ops[1]))]
        if mnemonic in ("li", "la"):
            rd = self._reg(ops[0])
            value = _parse_imm(ops[1], labels) & 0xFFFFFFFF
            low = value & 0xFFF
            low = low - 0x1000 if low >= 0x800 else low
            high = ((value - low) >> 12) & 0xFFFFF
            return [enc.encode_u(enc.OP_LUI, rd, high),
                    enc.encode_i(enc.OP_IMM, 0, rd, rd, low)]
        if mnemonic == "j":
            return [enc.encode_j(enc.OP_JAL, 0,
                                 _parse_imm(ops[0], labels) - pc)]
        if mnemonic == "jr":
            return [enc.encode_i(enc.OP_JALR, 0, 0, self._reg(ops[0]), 0)]
        if mnemonic == "ret":
            return [enc.encode_i(enc.OP_JALR, 0, 0, 1, 0)]
        if mnemonic == "call":
            return [enc.encode_j(enc.OP_JAL, 1,
                                 _parse_imm(ops[0], labels) - pc)]
        if mnemonic == "beqz":
            return [enc.encode_b(enc.OP_BRANCH, 0, self._reg(ops[0]), 0,
                                 _parse_imm(ops[1], labels) - pc)]
        if mnemonic == "bnez":
            return [enc.encode_b(enc.OP_BRANCH, 1, self._reg(ops[0]), 0,
                                 _parse_imm(ops[1], labels) - pc)]
        if mnemonic == "bgtz":
            return [enc.encode_b(enc.OP_BRANCH, 0b100, 0, self._reg(ops[0]),
                                 _parse_imm(ops[1], labels) - pc)]
        if mnemonic == "blez":
            return [enc.encode_b(enc.OP_BRANCH, 0b101, 0, self._reg(ops[0]),
                                 _parse_imm(ops[1], labels) - pc)]

        info = enc.INSTRUCTIONS.get(mnemonic)
        if info is None:
            raise AssemblerError(f"unknown mnemonic {mnemonic!r}")
        fmt, opcode, funct3, funct7 = info
        if fmt == "R":
            return [enc.encode_r(opcode, funct3, funct7, self._reg(ops[0]),
                                 self._reg(ops[1]), self._reg(ops[2]))]
        if fmt == "Ishamt":
            shamt = _parse_imm(ops[2], labels)
            if not 0 <= shamt < 32:
                raise AssemblerError(f"shift amount {shamt} out of range")
            return [enc.encode_i(opcode, funct3, self._reg(ops[0]),
                                 self._reg(ops[1]),
                                 (funct7 << 5) | shamt)]
        if fmt == "I":
            if opcode == enc.OP_LOAD or (opcode == enc.OP_JALR and
                                         _MEM_RE.match(ops[-1] if ops else "")):
                rd = self._reg(ops[0])
                match = _MEM_RE.match(ops[1])
                if not match:
                    raise AssemblerError(f"expected offset(reg), got {ops[1]!r}")
                imm = _parse_imm(match.group(1) or "0", labels)
                return [enc.encode_i(opcode, funct3, rd,
                                     self._reg(match.group(2)), imm)]
            if opcode == enc.OP_JALR:
                rd = self._reg(ops[0])
                rs1 = self._reg(ops[1])
                imm = _parse_imm(ops[2], labels) if len(ops) > 2 else 0
                return [enc.encode_i(opcode, funct3, rd, rs1, imm)]
            return [enc.encode_i(opcode, funct3, self._reg(ops[0]),
                                 self._reg(ops[1]),
                                 _parse_imm(ops[2], labels))]
        if fmt == "S":
            match = _MEM_RE.match(ops[1])
            if not match:
                raise AssemblerError(f"expected offset(reg), got {ops[1]!r}")
            return [enc.encode_s(opcode, funct3, self._reg(match.group(2)),
                                 self._reg(ops[0]),
                                 _parse_imm(match.group(1) or "0", labels))]
        if fmt == "B":
            return [enc.encode_b(opcode, funct3, self._reg(ops[0]),
                                 self._reg(ops[1]),
                                 _parse_imm(ops[2], labels) - pc)]
        if fmt == "U":
            return [enc.encode_u(opcode, self._reg(ops[0]),
                                 _parse_imm(ops[1], labels))]
        if fmt == "J":
            return [enc.encode_j(opcode, self._reg(ops[0]),
                                 _parse_imm(ops[1], labels) - pc)]
        raise AssemblerError(f"unhandled format {fmt!r}")


def assemble(source: str, base: int = 0, max_reg: int = 32) -> Program:
    """Assemble RV32I source text into a :class:`Program`."""
    return Assembler(max_reg=max_reg).assemble(source, base)
