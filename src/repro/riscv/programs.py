"""Benchmark programs for the RV32 cores (assembled in-repo).

``primes`` is the paper's "simple integer arithmetic benchmark" role:
integer-only trial division (RV32I has no divide, so modulo is computed by
repeated subtraction — branchy, data-dependent work that exercises hazards
and the branch predictor).  ``nops`` reproduces case study 3's workload.
``branchy`` has patterned, predictable branches so the BTB+BHT variant
shines (case study 4).  All programs end with a store to ``TOHOST``.
"""

from __future__ import annotations

from .assembler import Program, assemble
from .golden import OUTPUT_ADDR, TOHOST_ADDR


def primes_source(limit: int = 100) -> str:
    """Count primes strictly below ``limit``; result -> TOHOST."""
    return f"""
    # count primes < {limit} by trial division (mod via subtraction)
        li   s0, 2            # candidate i
        li   s1, {limit}      # limit
        li   a0, 0            # prime count
    outer:
        bgeu s0, s1, done
        li   t0, 2            # divisor j
    inner:
        bgeu t0, s0, is_prime # j >= i: no divisor found
        mv   t1, s0           # t1 = i
    mod_loop:                 # t1 = t1 mod t0 by repeated subtraction
        bltu t1, t0, mod_done
        sub  t1, t1, t0
        j    mod_loop
    mod_done:
        beqz t1, not_prime    # divisible -> composite
        addi t0, t0, 1
        j    inner
    is_prime:
        addi a0, a0, 1
    not_prime:
        addi s0, s0, 1
        j    outer
    done:
        li   t2, {TOHOST_ADDR:#x}
        sw   a0, 0(t2)
    halt:
        j    halt
    """


def nops_source(count: int = 100) -> str:
    """``count`` NOPs then halt — case study 3's 1-IPC litmus test."""
    body = "\n".join("        nop" for _ in range(count))
    return f"""
{body}
        li   t2, {TOHOST_ADDR:#x}
        li   a2, {count}
        sw   a2, 0(t2)
    halt:
        j    halt
    """


def arithmetic_source(iterations: int = 64) -> str:
    """A straight-line-heavy arithmetic mix in a short loop."""
    return f"""
        li   s0, 0            # i
        li   s1, {iterations}
        li   a0, 0x1234       # accumulator
    loop:
        slli t0, a0, 3
        srli t1, a0, 5
        xor  t0, t0, t1
        add  a0, a0, t0
        andi t2, a0, 0xFF
        or   a0, a0, t2
        sub  a2, a0, s0
        sltu a3, s0, a2
        add  a0, a0, a3
        addi s0, s0, 1
        bltu s0, s1, loop
        li   t2, {TOHOST_ADDR:#x}
        sw   a0, 0(t2)
    halt:
        j    halt
    """


def fibonacci_source(n: int = 20) -> str:
    """Iterative Fibonacci; fib(n) -> TOHOST."""
    return f"""
        li   s0, 0            # fib(0)
        li   s1, 1            # fib(1)
        li   t0, 0            # i
        li   t1, {n}
    loop:
        bgeu t0, t1, done
        add  t2, s0, s1
        mv   s0, s1
        mv   s1, t2
        addi t0, t0, 1
        j    loop
    done:
        li   t2, {TOHOST_ADDR:#x}
        sw   s0, 0(t2)
    halt:
        j    halt
    """


def sort_source(values=(9, 4, 7, 1, 8, 3, 6, 2, 5, 0)) -> str:
    """Bubble-sort an in-memory array; weighted checksum -> TOHOST."""
    n = len(values)
    words = ", ".join(str(v) for v in values)
    return f"""
        la   s0, data
        li   s1, {n}
    outer:
        addi s1, s1, -1
        blez s1, check
        li   t0, 0            # index
        mv   a5, s0
    inner:
        bge  t0, s1, outer
        lw   t1, 0(a5)
        lw   t2, 4(a5)
        ble_ok:
        bge  t2, t1, no_swap
        sw   t2, 0(a5)
        sw   t1, 4(a5)
    no_swap:
        addi t0, t0, 1
        addi a5, a5, 4
        j    inner
    check:
        li   a2, 0            # checksum
        li   t0, 0
        mv   a5, s0
    sumloop:
        lw   t1, 0(a5)
        slli a3, t0, 2
        add  a4, t1, a3
        add  a2, a2, a4
        addi t0, t0, 1
        addi a5, a5, 4
        li   a4, {n}
        blt  t0, a4, sumloop
        li   t2, {TOHOST_ADDR:#x}
        sw   a2, 0(t2)
    halt:
        j    halt
    .org 0x400
    data:
        .word {words}
    """


def branchy_source(iterations: int = 200) -> str:
    """Patterned branches (period-2 and period-4 loops plus a backward
    loop branch) — the BTB + 2-bit BHT predicts these well, the
    ``pc + 4`` baseline mispredicts constantly (case study 4)."""
    return f"""
        li   s0, 0            # i
        li   s1, {iterations}
        li   a0, 0            # acc
    loop:
        andi t0, s0, 1        # period-2 pattern
        beqz t0, even
        addi a0, a0, 3
        j    joined
    even:
        addi a0, a0, 1
    joined:
        andi t1, s0, 3        # period-4 pattern
        bnez t1, skip
        slli a0, a0, 1
    skip:
        addi s0, s0, 1
        bltu s0, s1, loop
        li   t2, {TOHOST_ADDR:#x}
        sw   a0, 0(t2)
    halt:
        j    halt
    """


def stream_output_source(count: int = 10) -> str:
    """Writes ``count`` squares to the OUTPUT port then halts (exercises
    the MMIO output path end to end)."""
    return f"""
        li   s0, 0
        li   s1, {count}
        li   a1, {OUTPUT_ADDR:#x}
    loop:
        bgeu s0, s1, done
        mv   t0, s0
        li   t1, 0
        mv   t2, s0
    mulloop:                  # t1 = s0 * s0 by repeated addition
        beqz t2, muldone
        add  t1, t1, t0
        addi t2, t2, -1
        j    mulloop
    muldone:
        sw   t1, 0(a1)
        addi s0, s0, 1
        j    loop
    done:
        li   t2, {TOHOST_ADDR:#x}
        sw   s0, 0(t2)
    halt:
        j    halt
    """


def assemble_program(source: str, max_reg: int = 32) -> Program:
    return assemble(source, base=0, max_reg=max_reg)


def crc32_source(words=(0xDEADBEEF, 0x12345678, 0xCAFEBABE, 0x0BADF00D)) -> str:
    """Bit-serial CRC-32 (reflected, poly 0xEDB88320) over an in-memory
    word array; the final CRC goes to TOHOST.  Load/store + branch heavy."""
    n = len(words)
    data = ", ".join(str(w) for w in words)
    return f"""
        la   s0, data
        li   s1, {n}
        li   a0, 0xFFFFFFFF    # crc
        li   a1, 0xEDB88320    # polynomial
    word_loop:
        beqz s1, done
        lw   t0, 0(s0)
        xor  a0, a0, t0
        li   t1, 32
    bit_loop:
        andi t2, a0, 1
        srli a0, a0, 1
        beqz t2, no_xor
        xor  a0, a0, a1
    no_xor:
        addi t1, t1, -1
        bnez t1, bit_loop
        addi s0, s0, 4
        addi s1, s1, -1
        j    word_loop
    done:
        not  a0, a0
        li   t2, {TOHOST_ADDR:#x}
        sw   a0, 0(t2)
    halt:
        j    halt
    .org 0x400
    data:
        .word {data}
    """


def crc32_reference(words=(0xDEADBEEF, 0x12345678, 0xCAFEBABE, 0x0BADF00D)) -> int:
    """Software model of :func:`crc32_source` (word-at-a-time variant)."""
    crc = 0xFFFFFFFF
    for word in words:
        crc ^= word
        for _ in range(32):
            if crc & 1:
                crc = (crc >> 1) ^ 0xEDB88320
            else:
                crc >>= 1
    return crc ^ 0xFFFFFFFF


def matmul_source(n: int = 3) -> str:
    """Dense n x n integer matrix multiply using the M extension's ``mul``
    (requires an rv32im core); the trace of the product goes to TOHOST."""
    a = [[(i * n + j + 1) for j in range(n)] for i in range(n)]
    b = [[((i + 2) * (j + 1)) % 17 for j in range(n)] for i in range(n)]
    a_words = ", ".join(str(x) for row in a for x in row)
    b_words = ", ".join(str(x) for row in b for x in row)
    return f"""
        li   s0, 0             # i
        li   a5, 0             # trace accumulator
    row_loop:
        li   s1, 0             # j
    col_loop:
        li   a0, 0             # dot product
        li   t0, 0             # k
    dot_loop:
        # a[i][k]
        li   t1, {n}
        mul  t2, s0, t1
        add  t2, t2, t0
        slli t2, t2, 2
        la   t3, mat_a
        add  t3, t3, t2
        lw   t4, 0(t3)
        # b[k][j]
        mul  t2, t0, t1
        add  t2, t2, s1
        slli t2, t2, 2
        la   t3, mat_b
        add  t3, t3, t2
        lw   t1, 0(t3)
        mul  t4, t4, t1
        add  a0, a0, t4
        addi t0, t0, 1
        li   t1, {n}
        bltu t0, t1, dot_loop
        # accumulate diagonal elements into the trace
        bne  s0, s1, skip_trace
        add  a5, a5, a0
    skip_trace:
        addi s1, s1, 1
        li   t1, {n}
        bltu s1, t1, col_loop
        addi s0, s0, 1
        li   t1, {n}
        bltu s0, t1, row_loop
        li   t2, {TOHOST_ADDR:#x}
        sw   a5, 0(t2)
    halt:
        j    halt
    .org 0x400
    mat_a:
        .word {a_words}
    .org 0x600
    mat_b:
        .word {b_words}
    """


def matmul_reference(n: int = 3) -> int:
    """Trace of the product computed by :func:`matmul_source`."""
    a = [[(i * n + j + 1) for j in range(n)] for i in range(n)]
    b = [[((i + 2) * (j + 1)) % 17 for j in range(n)] for i in range(n)]
    trace = 0
    for i in range(n):
        trace += sum(a[i][k] * b[k][i] for k in range(n))
    return trace & 0xFFFFFFFF


def gcd_chain_source(pairs=((270, 192), (1071, 462), (35, 64))) -> str:
    """Euclid's algorithm (subtraction form) over several pairs; the sum
    of the GCDs goes to TOHOST.  Data-dependent branches galore."""
    flattened = ", ".join(f"{a}, {b}" for a, b in pairs)
    return f"""
        la   s0, data
        li   s1, {len(pairs)}
        li   a0, 0             # sum of gcds
    pair_loop:
        beqz s1, done
        lw   t0, 0(s0)
        lw   t1, 4(s0)
    gcd_loop:
        beq  t0, t1, gcd_done
        bltu t0, t1, swap_sub
        sub  t0, t0, t1
        j    gcd_loop
    swap_sub:
        sub  t1, t1, t0
        j    gcd_loop
    gcd_done:
        add  a0, a0, t0
        addi s0, s0, 8
        addi s1, s1, -1
        j    pair_loop
    done:
        li   t2, {TOHOST_ADDR:#x}
        sw   a0, 0(t2)
    halt:
        j    halt
    .org 0x400
    data:
        .word {flattened}
    """


def byte_ops_source() -> str:
    """Byte/halfword loads and stores (lb/lbu/lh/lhu/sb/sh): copies a
    packed string byte-by-byte, builds a checksum mixing signed and
    unsigned sub-word loads; checksum -> TOHOST."""
    return f"""
        la   s0, src_data
        la   s1, dst_data
        li   t0, 12           # bytes to copy
    copy_loop:
        beqz t0, verify
        lb   t1, 0(s0)        # signed byte load
        sb   t1, 0(s1)
        addi s0, s0, 1
        addi s1, s1, 1
        addi t0, t0, -1
        j    copy_loop
    verify:
        la   s1, dst_data
        li   a0, 0            # checksum
        li   t0, 12
        li   t2, 0
    sum_loop:
        beqz t0, halves
        lbu  t1, 0(s1)        # unsigned reload of what we stored
        add  a0, a0, t1
        lb   t1, 0(s1)        # signed reload mixes in sign extension
        xor  a0, a0, t1
        addi s1, s1, 1
        addi t0, t0, -1
        j    sum_loop
    halves:
        la   s1, dst_data
        lh   t1, 0(s1)        # signed halfword
        add  a0, a0, t1
        lhu  t1, 2(s1)        # unsigned halfword
        add  a0, a0, t1
        li   t1, 0xBEEF
        sh   t1, 4(s1)        # halfword store
        lhu  t1, 4(s1)
        add  a0, a0, t1
        li   t2, {TOHOST_ADDR:#x}
        sw   a0, 0(t2)
    halt:
        j    halt
    .org 0x400
    src_data:
        .word 0x818243C4, 0x7F80FF01, 0x00112233
    .org 0x500
    dst_data:
        .word 0, 0, 0
    """
