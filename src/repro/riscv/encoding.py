"""RV32I instruction encodings (user subset, as in the paper's cores:
"supporting the RV32I&E flavors of the RISC-V ISA, minus system
instructions, interrupts and exceptions")."""

from __future__ import annotations

from typing import Dict, NamedTuple, Optional, Tuple

from ..errors import AssemblerError

# Opcodes (major, bits [6:0]).
OP_LUI = 0b0110111
OP_AUIPC = 0b0010111
OP_JAL = 0b1101111
OP_JALR = 0b1100111
OP_BRANCH = 0b1100011
OP_LOAD = 0b0000011
OP_STORE = 0b0100011
OP_IMM = 0b0010011
OP_REG = 0b0110011

#: mnemonic -> (format, opcode, funct3, funct7)
INSTRUCTIONS: Dict[str, Tuple[str, int, Optional[int], Optional[int]]] = {
    "lui":   ("U", OP_LUI, None, None),
    "auipc": ("U", OP_AUIPC, None, None),
    "jal":   ("J", OP_JAL, None, None),
    "jalr":  ("I", OP_JALR, 0b000, None),
    "beq":   ("B", OP_BRANCH, 0b000, None),
    "bne":   ("B", OP_BRANCH, 0b001, None),
    "blt":   ("B", OP_BRANCH, 0b100, None),
    "bge":   ("B", OP_BRANCH, 0b101, None),
    "bltu":  ("B", OP_BRANCH, 0b110, None),
    "bgeu":  ("B", OP_BRANCH, 0b111, None),
    "lb":    ("I", OP_LOAD, 0b000, None),
    "lh":    ("I", OP_LOAD, 0b001, None),
    "lw":    ("I", OP_LOAD, 0b010, None),
    "lbu":   ("I", OP_LOAD, 0b100, None),
    "lhu":   ("I", OP_LOAD, 0b101, None),
    "sb":    ("S", OP_STORE, 0b000, None),
    "sh":    ("S", OP_STORE, 0b001, None),
    "sw":    ("S", OP_STORE, 0b010, None),
    "addi":  ("I", OP_IMM, 0b000, None),
    "slti":  ("I", OP_IMM, 0b010, None),
    "sltiu": ("I", OP_IMM, 0b011, None),
    "xori":  ("I", OP_IMM, 0b100, None),
    "ori":   ("I", OP_IMM, 0b110, None),
    "andi":  ("I", OP_IMM, 0b111, None),
    "slli":  ("Ishamt", OP_IMM, 0b001, 0b0000000),
    "srli":  ("Ishamt", OP_IMM, 0b101, 0b0000000),
    "srai":  ("Ishamt", OP_IMM, 0b101, 0b0100000),
    "add":   ("R", OP_REG, 0b000, 0b0000000),
    "sub":   ("R", OP_REG, 0b000, 0b0100000),
    "sll":   ("R", OP_REG, 0b001, 0b0000000),
    "slt":   ("R", OP_REG, 0b010, 0b0000000),
    "sltu":  ("R", OP_REG, 0b011, 0b0000000),
    "xor":   ("R", OP_REG, 0b100, 0b0000000),
    "srl":   ("R", OP_REG, 0b101, 0b0000000),
    "sra":   ("R", OP_REG, 0b101, 0b0100000),
    "or":    ("R", OP_REG, 0b110, 0b0000000),
    "and":   ("R", OP_REG, 0b111, 0b0000000),
    # M extension (multiply/divide; funct7 = 0b0000001)
    "mul":    ("R", OP_REG, 0b000, 0b0000001),
    "mulh":   ("R", OP_REG, 0b001, 0b0000001),
    "mulhsu": ("R", OP_REG, 0b010, 0b0000001),
    "mulhu":  ("R", OP_REG, 0b011, 0b0000001),
    "div":    ("R", OP_REG, 0b100, 0b0000001),
    "divu":   ("R", OP_REG, 0b101, 0b0000001),
    "rem":    ("R", OP_REG, 0b110, 0b0000001),
    "remu":   ("R", OP_REG, 0b111, 0b0000001),
}

ABI_NAMES = {
    "zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
    "t0": 5, "t1": 6, "t2": 7, "s0": 8, "fp": 8, "s1": 9,
    "a0": 10, "a1": 11, "a2": 12, "a3": 13, "a4": 14, "a5": 15,
    "a6": 16, "a7": 17, "s2": 18, "s3": 19, "s4": 20, "s5": 21,
    "s6": 22, "s7": 23, "s8": 24, "s9": 25, "s10": 26, "s11": 27,
    "t3": 28, "t4": 29, "t5": 30, "t6": 31,
}


def reg_number(name: str, max_reg: int = 32) -> int:
    name = name.lower().strip()
    if name in ABI_NAMES:
        number = ABI_NAMES[name]
    elif name.startswith("x") and name[1:].isdigit():
        number = int(name[1:])
    else:
        raise AssemblerError(f"unknown register {name!r}")
    if not 0 <= number < max_reg:
        raise AssemblerError(f"register {name!r} out of range (RV32E?)")
    return number


def _fit(value: int, bits: int, signed: bool, what: str) -> int:
    low = -(1 << (bits - 1)) if signed else 0
    high = (1 << (bits - 1)) - 1 if signed else (1 << bits) - 1
    if not low <= value <= high:
        raise AssemblerError(f"{what} {value} does not fit in {bits} bits")
    return value & ((1 << bits) - 1)


def encode_r(opcode: int, funct3: int, funct7: int, rd: int, rs1: int,
             rs2: int) -> int:
    return (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | \
        (rd << 7) | opcode


def encode_i(opcode: int, funct3: int, rd: int, rs1: int, imm: int) -> int:
    imm = _fit(imm, 12, signed=True, what="I immediate")
    return (imm << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode


def encode_s(opcode: int, funct3: int, rs1: int, rs2: int, imm: int) -> int:
    imm = _fit(imm, 12, signed=True, what="S immediate")
    return (((imm >> 5) & 0x7F) << 25) | (rs2 << 20) | (rs1 << 15) | \
        (funct3 << 12) | ((imm & 0x1F) << 7) | opcode


def encode_b(opcode: int, funct3: int, rs1: int, rs2: int, offset: int) -> int:
    if offset % 2:
        raise AssemblerError(f"branch offset {offset} is not even")
    imm = _fit(offset, 13, signed=True, what="branch offset")
    return (((imm >> 12) & 1) << 31) | (((imm >> 5) & 0x3F) << 25) | \
        (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | \
        (((imm >> 1) & 0xF) << 8) | (((imm >> 11) & 1) << 7) | opcode


def encode_u(opcode: int, rd: int, imm: int) -> int:
    imm = _fit(imm, 20, signed=False, what="U immediate") if imm >= 0 else \
        _fit(imm, 20, signed=True, what="U immediate")
    return (imm << 12) | (rd << 7) | opcode


def encode_j(opcode: int, rd: int, offset: int) -> int:
    if offset % 2:
        raise AssemblerError(f"jump offset {offset} is not even")
    imm = _fit(offset, 21, signed=True, what="jump offset")
    return (((imm >> 20) & 1) << 31) | (((imm >> 1) & 0x3FF) << 21) | \
        (((imm >> 11) & 1) << 20) | (((imm >> 12) & 0xFF) << 12) | \
        (rd << 7) | opcode


class Decoded(NamedTuple):
    """Fields of a decoded instruction (used by the golden model)."""

    opcode: int
    rd: int
    funct3: int
    rs1: int
    rs2: int
    funct7: int
    imm_i: int
    imm_s: int
    imm_b: int
    imm_u: int
    imm_j: int


def _sext(value: int, bits: int) -> int:
    if value & (1 << (bits - 1)):
        return value - (1 << bits)
    return value


def decode(instr: int) -> Decoded:
    opcode = instr & 0x7F
    rd = (instr >> 7) & 0x1F
    funct3 = (instr >> 12) & 0x7
    rs1 = (instr >> 15) & 0x1F
    rs2 = (instr >> 20) & 0x1F
    funct7 = (instr >> 25) & 0x7F
    imm_i = _sext(instr >> 20, 12)
    imm_s = _sext(((instr >> 25) << 5) | ((instr >> 7) & 0x1F), 12)
    imm_b = _sext(
        (((instr >> 31) & 1) << 12) | (((instr >> 7) & 1) << 11)
        | (((instr >> 25) & 0x3F) << 5) | (((instr >> 8) & 0xF) << 1), 13)
    imm_u = _sext(instr >> 12, 20) << 12
    imm_j = _sext(
        (((instr >> 31) & 1) << 20) | (((instr >> 12) & 0xFF) << 12)
        | (((instr >> 20) & 1) << 11) | (((instr >> 21) & 0x3FF) << 1), 21)
    return Decoded(opcode, rd, funct3, rs1, rs2, funct7,
                   imm_i, imm_s, imm_b, imm_u, imm_j)


#: Canonical NOP: addi x0, x0, 0.
NOP = encode_i(OP_IMM, 0b000, 0, 0, 0)
