"""Golden ISA-level model of RV32I (the oracle for the pipelined cores).

Executes one instruction per step with no timing model.  Memory-mapped
conventions shared with the hardware testbench devices:

* a store to ``TOHOST_ADDR`` halts the program; the stored value is the
  program's result;
* a store to ``OUTPUT_ADDR`` appends the value to an output stream.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import SimulationError
from ..koika.types import to_signed, truncate
from . import encoding as enc
from .assembler import Program

TOHOST_ADDR = 0x40000000
OUTPUT_ADDR = 0x40000004


def load_from(memory: Dict[int, int], addr: int, funct3: int) -> int:
    """Perform an RV32I load against a word-addressed memory dict."""
    word = memory.get(addr & ~3, 0)
    offset = (addr & 3) * 8
    if funct3 == 0b010:  # lw
        if addr % 4:
            raise SimulationError(f"unaligned lw at {addr:#x}")
        return word
    if funct3 in (0b000, 0b100):  # lb / lbu
        byte = (word >> offset) & 0xFF
        return byte if funct3 == 0b100 else truncate(to_signed(byte, 8), 32)
    if funct3 in (0b001, 0b101):  # lh / lhu
        if addr % 2:
            raise SimulationError(f"unaligned lh at {addr:#x}")
        half = (word >> offset) & 0xFFFF
        return half if funct3 == 0b101 else truncate(to_signed(half, 16), 32)
    raise SimulationError(f"bad load funct3 {funct3:#b}")


def store_to(memory: Dict[int, int], addr: int, value: int,
             funct3: int) -> None:
    """Perform an RV32I store against a word-addressed memory dict
    (MMIO addresses are the caller's responsibility)."""
    base = addr & ~3
    word = memory.get(base, 0)
    offset = (addr & 3) * 8
    if funct3 == 0b010:  # sw
        if addr % 4:
            raise SimulationError(f"unaligned sw at {addr:#x}")
        memory[base] = value & 0xFFFFFFFF
    elif funct3 == 0b000:  # sb
        mask = 0xFF << offset
        memory[base] = (word & ~mask) | ((value & 0xFF) << offset)
    elif funct3 == 0b001:  # sh
        if addr % 2:
            raise SimulationError(f"unaligned sh at {addr:#x}")
        mask = 0xFFFF << offset
        memory[base] = (word & ~mask) | ((value & 0xFFFF) << offset)
    else:
        raise SimulationError(f"bad store funct3 {funct3:#b}")


class GoldenModel:
    """One-instruction-at-a-time RV32I interpreter."""

    def __init__(self, program: Program, pc: int = 0, nregs: int = 32):
        self.memory: Dict[int, int] = program.memory_image()
        self.pc = pc
        self.nregs = nregs
        self.regs: List[int] = [0] * 32
        self.halted = False
        self.result: Optional[int] = None
        self.outputs: List[int] = []
        self.instructions_executed = 0

    # -- memory ------------------------------------------------------------
    def load_word(self, addr: int) -> int:
        if addr % 4:
            raise SimulationError(f"unaligned word load at {addr:#x}")
        return self.memory.get(addr, 0)

    def store_word(self, addr: int, value: int) -> None:
        value &= 0xFFFFFFFF
        if addr == TOHOST_ADDR:
            self.halted = True
            self.result = value
            return
        if addr == OUTPUT_ADDR:
            self.outputs.append(value)
            return
        if addr % 4:
            raise SimulationError(f"unaligned word store at {addr:#x}")
        self.memory[addr] = value

    def _load(self, addr: int, funct3: int) -> int:
        return load_from(self.memory, addr, funct3)

    def _store(self, addr: int, value: int, funct3: int) -> None:
        if addr in (TOHOST_ADDR, OUTPUT_ADDR):
            self.store_word(addr, value)
            return
        store_to(self.memory, addr, value, funct3)

    # -- execution -----------------------------------------------------------
    def _write_reg(self, rd: int, value: int) -> None:
        if rd != 0:
            if rd >= self.nregs:
                raise SimulationError(
                    f"write to x{rd} on an RV32E ({self.nregs}-register) core"
                )
            self.regs[rd] = value & 0xFFFFFFFF

    def step(self) -> None:
        if self.halted:
            return
        instr = self.load_word(self.pc)
        d = enc.decode(instr)
        rs1 = self.regs[d.rs1]
        rs2 = self.regs[d.rs2]
        next_pc = (self.pc + 4) & 0xFFFFFFFF
        op = d.opcode
        if op == enc.OP_LUI:
            self._write_reg(d.rd, d.imm_u)
        elif op == enc.OP_AUIPC:
            self._write_reg(d.rd, self.pc + d.imm_u)
        elif op == enc.OP_JAL:
            self._write_reg(d.rd, next_pc)
            next_pc = (self.pc + d.imm_j) & 0xFFFFFFFF
        elif op == enc.OP_JALR:
            self._write_reg(d.rd, next_pc)
            next_pc = (rs1 + d.imm_i) & 0xFFFFFFFE
        elif op == enc.OP_BRANCH:
            taken = self._branch_taken(d.funct3, rs1, rs2)
            if taken:
                next_pc = (self.pc + d.imm_b) & 0xFFFFFFFF
        elif op == enc.OP_LOAD:
            self._write_reg(d.rd, self._load((rs1 + d.imm_i) & 0xFFFFFFFF,
                                             d.funct3))
        elif op == enc.OP_STORE:
            self._store((rs1 + d.imm_s) & 0xFFFFFFFF, rs2, d.funct3)
        elif op == enc.OP_IMM:
            self._write_reg(d.rd, self._alu(d.funct3,
                                            (d.funct7 if d.funct3 == 0b101
                                             else 0), rs1,
                                            d.imm_i & 0xFFFFFFFF,
                                            imm_mode=True))
        elif op == enc.OP_REG:
            if d.funct7 == 0b0000001:
                self._write_reg(d.rd, self._muldiv(d.funct3, rs1, rs2))
            else:
                self._write_reg(d.rd, self._alu(d.funct3, d.funct7, rs1,
                                                rs2, imm_mode=False))
        else:
            raise SimulationError(
                f"illegal instruction {instr:#010x} at pc {self.pc:#x}")
        self.pc = next_pc
        self.instructions_executed += 1

    def _branch_taken(self, funct3: int, rs1: int, rs2: int) -> bool:
        if funct3 == 0b000:
            return rs1 == rs2
        if funct3 == 0b001:
            return rs1 != rs2
        if funct3 == 0b100:
            return to_signed(rs1, 32) < to_signed(rs2, 32)
        if funct3 == 0b101:
            return to_signed(rs1, 32) >= to_signed(rs2, 32)
        if funct3 == 0b110:
            return rs1 < rs2
        if funct3 == 0b111:
            return rs1 >= rs2
        raise SimulationError(f"bad branch funct3 {funct3:#b}")

    def _muldiv(self, funct3: int, a: int, b: int) -> int:
        """RV32M semantics, including the division-by-zero and overflow
        conventions of the RISC-V spec."""
        sa, sb = to_signed(a, 32), to_signed(b, 32)
        if funct3 == 0b000:  # mul
            return (a * b) & 0xFFFFFFFF
        if funct3 == 0b001:  # mulh
            return ((sa * sb) >> 32) & 0xFFFFFFFF
        if funct3 == 0b010:  # mulhsu
            return ((sa * b) >> 32) & 0xFFFFFFFF
        if funct3 == 0b011:  # mulhu
            return ((a * b) >> 32) & 0xFFFFFFFF
        if funct3 == 0b100:  # div (round toward zero)
            if b == 0:
                return 0xFFFFFFFF
            quotient = -(-sa // sb) if (sa < 0) != (sb < 0) else sa // sb
            return truncate(quotient, 32)
        if funct3 == 0b101:  # divu
            return 0xFFFFFFFF if b == 0 else a // b
        if funct3 == 0b110:  # rem (sign of dividend)
            if b == 0:
                return a
            quotient = -(-sa // sb) if (sa < 0) != (sb < 0) else sa // sb
            return truncate(sa - quotient * sb, 32)
        # remu
        return a if b == 0 else a % b

    def _alu(self, funct3: int, funct7: int, a: int, b: int,
             imm_mode: bool) -> int:
        if funct3 == 0b000:
            if not imm_mode and funct7 == 0b0100000:
                return (a - b) & 0xFFFFFFFF
            return (a + b) & 0xFFFFFFFF
        if funct3 == 0b001:
            return (a << (b & 31)) & 0xFFFFFFFF
        if funct3 == 0b010:
            return int(to_signed(a, 32) < to_signed(b, 32))
        if funct3 == 0b011:
            return int(a < b)
        if funct3 == 0b100:
            return a ^ b
        if funct3 == 0b101:
            if funct7 == 0b0100000:
                return truncate(to_signed(a, 32) >> (b & 31), 32)
            return a >> (b & 31)
        if funct3 == 0b110:
            return a | b
        return a & b

    def run(self, max_steps: int = 1_000_000) -> int:
        """Run to completion; returns the value stored to ``TOHOST``."""
        for _ in range(max_steps):
            if self.halted:
                assert self.result is not None
                return self.result
            self.step()
        raise SimulationError(f"program did not halt within {max_steps} steps")
