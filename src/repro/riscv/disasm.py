"""RV32IM disassembler.

Produces assembler-compatible text (``disassemble`` output re-assembles
to the same word — tested by round-trip), used by the pipeline viewer and
the CLI to label instructions flowing through the cores.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from . import encoding as enc

#: (opcode, funct3, funct7_or_None) -> mnemonic, built from the encoder's
#: own table so the two can never drift apart.
_BY_FIELDS: Dict[Tuple[int, int, Optional[int]], str] = {}
for _name, (_fmt, _op, _f3, _f7) in enc.INSTRUCTIONS.items():
    if _fmt in ("R", "Ishamt"):
        _BY_FIELDS[(_op, _f3, _f7)] = _name
    elif _f3 is not None:
        _BY_FIELDS[(_op, _f3, None)] = _name

_REG_NAMES = {number: name for name, number in enc.ABI_NAMES.items()
              if name not in ("fp",)}


def _reg(number: int) -> str:
    return _REG_NAMES.get(number, f"x{number}")


def disassemble(word: int, pc: int = 0) -> str:
    """Disassemble one instruction word.  Branch/jump targets are printed
    as absolute addresses computed from ``pc``."""
    if word == enc.NOP:
        return "nop"
    d = enc.decode(word)
    op = d.opcode
    if op == enc.OP_LUI:
        return f"lui {_reg(d.rd)}, {(word >> 12) & 0xFFFFF:#x}"
    if op == enc.OP_AUIPC:
        return f"auipc {_reg(d.rd)}, {(word >> 12) & 0xFFFFF:#x}"
    if op == enc.OP_JAL:
        target = (pc + d.imm_j) & 0xFFFFFFFF
        if d.rd == 0:
            return f"j {target:#x}"
        return f"jal {_reg(d.rd)}, {target:#x}"
    if op == enc.OP_JALR:
        if d.rd == 0 and d.rs1 == 1 and d.imm_i == 0:
            return "ret"
        return f"jalr {_reg(d.rd)}, {d.imm_i}({_reg(d.rs1)})"
    if op == enc.OP_BRANCH:
        mnemonic = _BY_FIELDS.get((op, d.funct3, None))
        if mnemonic is None:
            return f".word {word:#010x}"
        target = (pc + d.imm_b) & 0xFFFFFFFF
        return f"{mnemonic} {_reg(d.rs1)}, {_reg(d.rs2)}, {target:#x}"
    if op == enc.OP_LOAD:
        mnemonic = _BY_FIELDS.get((op, d.funct3, None))
        if mnemonic is None:
            return f".word {word:#010x}"
        return f"{mnemonic} {_reg(d.rd)}, {d.imm_i}({_reg(d.rs1)})"
    if op == enc.OP_STORE:
        mnemonic = _BY_FIELDS.get((op, d.funct3, None))
        if mnemonic is None:
            return f".word {word:#010x}"
        return f"{mnemonic} {_reg(d.rs2)}, {d.imm_s}({_reg(d.rs1)})"
    if op == enc.OP_IMM:
        if d.funct3 in (0b001, 0b101):  # shifts carry funct7 in the imm
            mnemonic = _BY_FIELDS.get((op, d.funct3, d.funct7 & 0b1111111))
            if mnemonic is None:
                return f".word {word:#010x}"
            return f"{mnemonic} {_reg(d.rd)}, {_reg(d.rs1)}, {d.rs2}"
        mnemonic = _BY_FIELDS.get((op, d.funct3, None))
        if mnemonic is None:
            return f".word {word:#010x}"
        return f"{mnemonic} {_reg(d.rd)}, {_reg(d.rs1)}, {d.imm_i}"
    if op == enc.OP_REG:
        mnemonic = _BY_FIELDS.get((op, d.funct3, d.funct7))
        if mnemonic is None:
            return f".word {word:#010x}"
        return f"{mnemonic} {_reg(d.rd)}, {_reg(d.rs1)}, {_reg(d.rs2)}"
    return f".word {word:#010x}"


def disassemble_program(words: Dict[int, int], base: int = 0,
                        limit: Optional[int] = None) -> str:
    """Disassemble a word-addressed memory image into a listing."""
    lines = []
    for address in sorted(words):
        if limit is not None and len(lines) >= limit:
            lines.append("...")
            break
        lines.append(f"{address:08x}:  {words[address]:08x}  "
                     f"{disassemble(words[address], pc=address)}")
    return "\n".join(lines)
