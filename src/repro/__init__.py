"""Reproduction of "Effective simulation and debugging for a high-level
hardware language using software compilers" (Cuttlesim, ASPLOS 2021).

Quickstart::

    from repro import Design, C, Let, V, If, make_simulator

    d = Design("counter")
    x = d.reg("x", 8)
    d.rule("incr", x.wr0(x.rd0() + C(1, 8)))
    d.schedule("incr")

    sim = make_simulator(d, backend="cuttlesim")   # the paper's compiler
    sim.run(10)
    assert sim.peek("x") == 10

Package tour:

* :mod:`repro.koika` — the Kôika language (types, AST/DSL, designs).
* :mod:`repro.semantics` — the reference one-rule-at-a-time interpreter.
* :mod:`repro.analysis` — the static analysis of §3.3.
* :mod:`repro.cuttlesim` — the paper's contribution: compilation of designs
  to fast, readable, sequential simulation models (O0 through O5).
* :mod:`repro.rtl` — the synthesis path: circuit lowering, Verilog emission,
  and RTL-level simulators (the Verilator/Icarus/bsc analogues).
* :mod:`repro.harness` — one simulator API over every backend.
* :mod:`repro.debug` — coverage (Gcov), interactive debugger (gdb/rr),
  scheduler randomization, VCD waveforms.
* :mod:`repro.designs` — the paper's benchmark designs (Table 1) and the
  case-study systems.
* :mod:`repro.riscv` — RV32I assembler, golden model, benchmark programs.
* :mod:`repro.testing` — random design generation + differential running.
"""

from .harness import Device, Environment, make_simulator
from .koika import (
    Abort, Action, Assign, Binop, C, Call, Const, Design, EnumType, ExtCall,
    Fifo1, GetField, If, Let, Read, RegArray, Seq, StructType, SubstField,
    Unop, V, Var, Write, bits, clone_action, enum_const, guard, instantiate,
    mux, pretty_design, seq, struct_init, switch, when,
)

__version__ = "1.0.0"

__all__ = [
    "Device", "Environment", "make_simulator",
    "Abort", "Action", "Assign", "Binop", "C", "Call", "Const", "Design",
    "EnumType", "ExtCall", "Fifo1", "GetField", "If", "Let", "Read",
    "RegArray", "Seq", "StructType", "SubstField", "Unop", "V", "Var",
    "Write", "bits", "clone_action", "enum_const", "guard", "instantiate",
    "mux", "pretty_design", "seq", "struct_init", "switch", "when",
    "__version__",
]
