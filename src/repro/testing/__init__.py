"""Testing utilities: random design generation and differential running."""

from .differential import (DivergenceError, assert_backends_equal,
                           backend_factories, collect_trace, compare_traces,
                           interpreter_trace)
from .generators import random_design
from .mutation import Mutation, enumerate_mutations, kill_rate, make_mutant, mutant_count

__all__ = [
    "DivergenceError", "assert_backends_equal", "backend_factories",
    "collect_trace", "compare_traces", "interpreter_trace", "random_design",
    "Mutation", "enumerate_mutations", "kill_rate", "make_mutant",
    "mutant_count",
]
