"""Differential testing: run a design on several backends, compare states.

Used throughout the test suite and usable by downstream designs: after any
change, check that the reference interpreter, every Cuttlesim optimization
level, and the RTL simulators agree cycle-by-cycle.

Backends are independent simulations, so the comparison parallelizes
embarrassingly: with ``workers > 1`` each backend replays the design on a
forked worker of the simulation fleet and returns its per-cycle trace
(committed rules + register values), which the parent then diffs against
the reference interpreter.  Serial and parallel runs see byte-identical
traces.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..harness.env import Environment
from ..harness.parallel import Trial, run_fleet
from ..koika.design import Design
from ..semantics.interp import Interpreter

#: One backend's per-cycle observation: (committed rules or None, registers).
Trace = List[Tuple[Optional[Tuple[str, ...]], Tuple[int, ...]]]


class DivergenceError(AssertionError):
    """Two backends disagreed on a register value or a commit set."""


def backend_factories(design: Design, opts: Sequence[int] = (0, 1, 2, 3, 4, 5),
                      include_rtl: bool = True,
                      cache=None) -> Dict[str, Callable[[Environment], object]]:
    """Build a name -> factory map over all available backends."""
    from ..cuttlesim.codegen import compile_model

    factories: Dict[str, Callable[[Environment], object]] = {}
    for opt in opts:
        cls = compile_model(design, opt=opt, warn_goldberg=False, cache=cache)
        factories[f"cuttlesim-O{opt}"] = cls
    if 5 in opts:
        factories["cuttlesim-O5-simplified"] = compile_model(
            design, opt=5, simplify=True, warn_goldberg=False, cache=cache)
    if include_rtl:
        try:
            from ..rtl.cycle_sim import compile_cycle_sim

            factories["rtl-cycle"] = compile_cycle_sim(design)
        except ImportError:
            pass
    return factories


def collect_trace(sim, registers: Sequence[str], cycles: int) -> Trace:
    """Run ``cycles`` cycles, recording committed rules and register state."""
    trace: Trace = []
    for _ in range(cycles):
        committed = sim.run_cycle()
        state = tuple(int(sim.peek(register)) for register in registers)
        trace.append((None if committed is None else tuple(committed), state))
    return trace


def _compare_against_reference(design: Design, name: str, trace: Trace,
                               reference: Trace, registers: Sequence[str],
                               check_commits: bool) -> None:
    for cycle, ((committed, state), (ref_committed, ref_state)) \
            in enumerate(zip(trace, reference)):
        if check_commits and committed is not None:
            got, expected = set(committed), set(ref_committed or ())
            if got != expected:
                raise DivergenceError(
                    f"{design.name}, cycle {cycle}: backend {name} committed "
                    f"{sorted(got)} but the interpreter committed "
                    f"{sorted(expected)}"
                )
        for register, actual, expected in zip(registers, state, ref_state):
            if actual != expected:
                raise DivergenceError(
                    f"{design.name}, cycle {cycle}: register {register!r} is "
                    f"{actual} on {name} but {expected} on the interpreter"
                )


def assert_backends_equal(design: Design, cycles: int = 8,
                          env_factory: Optional[Callable[[], Environment]] = None,
                          opts: Sequence[int] = (0, 1, 2, 3, 4, 5),
                          include_rtl: bool = True,
                          check_commits: bool = True,
                          workers: Optional[int] = 1,
                          cache=None) -> None:
    """Run ``design`` on the interpreter and every backend; raise
    :class:`DivergenceError` on the first disagreement.

    ``workers`` > 1 replays the backends concurrently on the simulation
    fleet (``None`` = every core); ``cache`` is forwarded to the Cuttlesim
    compiles."""
    make_env = env_factory or Environment
    registers = list(design.registers)
    reference_sim = Interpreter(design, env=make_env())
    reference: Trace = []
    for _ in range(cycles):
        report = reference_sim.run_cycle()
        state = tuple(int(reference_sim.peek(r)) for r in registers)
        reference.append((tuple(report.committed), state))

    factories = backend_factories(design, opts, include_rtl, cache=cache)

    def make_trial(name: str, factory) -> Trial:
        def fn() -> Trace:
            return collect_trace(factory(make_env()), registers, cycles)

        return Trial(name=name, fn=fn)

    fleet = run_fleet([make_trial(name, factory)
                       for name, factory in factories.items()],
                      workers=workers)
    fleet.raise_on_failure()
    for result in fleet.results:
        _compare_against_reference(design, result.name, result.observation,
                                   reference, registers, check_commits)
