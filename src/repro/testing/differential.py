"""Differential testing: run a design on several backends, compare states.

Used throughout the test suite and usable by downstream designs: after any
change, check that the reference interpreter, every Cuttlesim optimization
level, and the RTL simulators agree cycle-by-cycle.

Backends are independent simulations, so the comparison parallelizes
embarrassingly: with ``workers > 1`` each backend replays the design on a
forked worker of the simulation fleet and returns its per-cycle trace
(committed rules + register values), which the parent then diffs against
the reference interpreter.  Serial and parallel runs see byte-identical
traces.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..harness.env import Environment
from ..harness.parallel import Trial, run_fleet
from ..koika.design import Design
from ..semantics.interp import Interpreter

#: One backend's per-cycle observation: (committed rules or None, registers).
Trace = List[Tuple[Optional[Tuple[str, ...]], Tuple[int, ...]]]


class DivergenceError(AssertionError):
    """Two backends disagreed on a register value or a commit set.

    Carries the disagreement as structured fields — the fuzzing campaign's
    triage bucketing and the delta-debugging reducer key off them, and the
    rendered message is derived from them so humans and tools read the
    same facts:

    * ``design`` — name of the diverging design;
    * ``backend`` / ``reference`` — the two simulations that disagreed;
    * ``cycle`` — the first cycle at which they disagreed;
    * ``kind`` — ``"register"`` (a register value differs) or
      ``"commits"`` (the committed-rule sets differ);
    * ``register`` — the first divergent register (``None`` for commit
      divergences);
    * ``expected`` — the reference's value (or sorted commit list);
    * ``actual`` — the backend's value (or sorted commit list).
    """

    def __init__(self, message: Optional[str] = None, *,
                 design: Optional[str] = None,
                 backend: Optional[str] = None,
                 reference: str = "interpreter",
                 cycle: Optional[int] = None,
                 kind: str = "register",
                 register: Optional[str] = None,
                 expected: object = None,
                 actual: object = None) -> None:
        self.design = design
        self.backend = backend
        self.reference = reference
        self.cycle = cycle
        self.kind = kind
        self.register = register
        self.expected = expected
        self.actual = actual
        super().__init__(message if message is not None else self.render())

    def render(self) -> str:
        where = f"{self.design}, cycle {self.cycle}"
        if self.kind == "commits":
            return (f"{where}: backend {self.backend} committed "
                    f"{self.actual} but the {self.reference} committed "
                    f"{self.expected}")
        return (f"{where}: register {self.register!r} is {self.actual} on "
                f"{self.backend} but {self.expected} on the "
                f"{self.reference}")

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe record of the structured fields (triage format)."""
        return {
            "design": self.design, "backend": self.backend,
            "reference": self.reference, "cycle": self.cycle,
            "kind": self.kind, "register": self.register,
            "expected": self.expected, "actual": self.actual,
        }


def backend_factories(design: Design, opts: Sequence[int] = (0, 1, 2, 3, 4, 5),
                      include_rtl: bool = True,
                      cache=None) -> Dict[str, Callable[[Environment], object]]:
    """Build a name -> factory map over all available backends."""
    from ..cuttlesim.codegen import compile_model

    factories: Dict[str, Callable[[Environment], object]] = {}
    for opt in opts:
        cls = compile_model(design, opt=opt, warn_goldberg=False, cache=cache)
        factories[f"cuttlesim-O{opt}"] = cls
    if 5 in opts:
        factories["cuttlesim-O5-simplified"] = compile_model(
            design, opt=5, simplify=True, warn_goldberg=False, cache=cache)
    if include_rtl:
        try:
            from ..rtl.cycle_sim import compile_cycle_sim

            factories["rtl-cycle"] = compile_cycle_sim(design)
        except ImportError:
            pass
    return factories


def collect_trace(sim, registers: Sequence[str], cycles: int) -> Trace:
    """Run ``cycles`` cycles, recording committed rules and register state."""
    trace: Trace = []
    for _ in range(cycles):
        committed = sim.run_cycle()
        state = tuple(int(sim.peek(register)) for register in registers)
        trace.append((None if committed is None else tuple(committed), state))
    return trace


def collect_batch_traces(model, registers: Sequence[str],
                         cycles: int) -> List[Trace]:
    """Per-lane traces from one batched lockstep model (index = lane).

    The batched tier's oracle shape: each lane's trace has exactly the
    :func:`collect_trace` structure, so every lane can be diffed with
    :func:`compare_traces` against a scalar run from the same initial
    state — byte-identical lane-by-lane is the correctness contract.
    """
    lanes = model.BATCH
    traces: List[Trace] = [[] for _ in range(lanes)]
    for _ in range(cycles):
        committed = model.run_cycle()
        for lane in range(lanes):
            state = tuple(int(model.peek_lane(register, lane))
                          for register in registers)
            traces[lane].append((committed[lane], state))
    return traces


def interpreter_trace(design: Design, cycles: int,
                      env_factory: Optional[Callable[[], Environment]] = None
                      ) -> Trace:
    """The reference interpreter's per-cycle trace for ``design``."""
    sim = Interpreter(design, env=(env_factory or Environment)())
    registers = list(design.registers)
    reference: Trace = []
    for _ in range(cycles):
        report = sim.run_cycle()
        state = tuple(int(sim.peek(r)) for r in registers)
        reference.append((tuple(report.committed), state))
    return reference


def compare_traces(design_name: str, backend: str, trace: Trace,
                   reference: Trace, registers: Sequence[str],
                   check_commits: bool = True,
                   reference_name: str = "interpreter") -> None:
    """Diff one backend's trace against a reference trace; raise a
    structured :class:`DivergenceError` at the first disagreement."""
    for cycle, ((committed, state), (ref_committed, ref_state)) \
            in enumerate(zip(trace, reference)):
        if check_commits and committed is not None:
            got, expected = set(committed), set(ref_committed or ())
            if got != expected:
                raise DivergenceError(
                    design=design_name, backend=backend,
                    reference=reference_name, cycle=cycle, kind="commits",
                    expected=sorted(expected), actual=sorted(got))
        for register, actual, expected in zip(registers, state, ref_state):
            if actual != expected:
                raise DivergenceError(
                    design=design_name, backend=backend,
                    reference=reference_name, cycle=cycle, kind="register",
                    register=register, expected=expected, actual=actual)


def assert_backends_equal(design: Design, cycles: int = 8,
                          env_factory: Optional[Callable[[], Environment]] = None,
                          opts: Sequence[int] = (0, 1, 2, 3, 4, 5),
                          include_rtl: bool = True,
                          check_commits: bool = True,
                          workers: Optional[int] = 1,
                          cache=None) -> None:
    """Run ``design`` on the interpreter and every backend; raise
    :class:`DivergenceError` on the first disagreement.

    ``workers`` > 1 replays the backends concurrently on the simulation
    fleet (``None`` = every core); ``cache`` is forwarded to the Cuttlesim
    compiles."""
    make_env = env_factory or Environment
    registers = list(design.registers)
    reference = interpreter_trace(design, cycles, make_env)

    factories = backend_factories(design, opts, include_rtl, cache=cache)

    def make_trial(name: str, factory) -> Trial:
        def fn() -> Trace:
            return collect_trace(factory(make_env()), registers, cycles)

        return Trial(name=name, fn=fn)

    fleet = run_fleet([make_trial(name, factory)
                       for name, factory in factories.items()],
                      workers=workers)
    fleet.raise_on_failure()
    for result in fleet.results:
        compare_traces(design.name, result.name, result.observation,
                       reference, registers, check_commits)
