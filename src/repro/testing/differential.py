"""Differential testing: run a design on several backends, compare states.

Used throughout the test suite and usable by downstream designs: after any
change, check that the reference interpreter, every Cuttlesim optimization
level, and the RTL simulators agree cycle-by-cycle.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..harness.env import Environment
from ..koika.design import Design
from ..semantics.interp import Interpreter


class DivergenceError(AssertionError):
    """Two backends disagreed on a register value or a commit set."""


def backend_factories(design: Design, opts: Sequence[int] = (0, 1, 2, 3, 4, 5),
                      include_rtl: bool = True) -> Dict[str, Callable[[Environment], object]]:
    """Build a name -> factory map over all available backends."""
    from ..cuttlesim.codegen import compile_model

    factories: Dict[str, Callable[[Environment], object]] = {}
    for opt in opts:
        cls = compile_model(design, opt=opt, warn_goldberg=False)
        factories[f"cuttlesim-O{opt}"] = cls
    if 5 in opts:
        factories["cuttlesim-O5-simplified"] = compile_model(
            design, opt=5, simplify=True, warn_goldberg=False)
    if include_rtl:
        try:
            from ..rtl.cycle_sim import compile_cycle_sim

            factories["rtl-cycle"] = compile_cycle_sim(design)
        except ImportError:
            pass
    return factories


def assert_backends_equal(design: Design, cycles: int = 8,
                          env_factory: Optional[Callable[[], Environment]] = None,
                          opts: Sequence[int] = (0, 1, 2, 3, 4, 5),
                          include_rtl: bool = True,
                          check_commits: bool = True) -> None:
    """Run ``design`` on the interpreter and every backend; raise
    :class:`DivergenceError` on the first disagreement."""
    make_env = env_factory or Environment
    reference = Interpreter(design, env=make_env())
    sims = {
        name: factory(make_env())
        for name, factory in backend_factories(design, opts, include_rtl).items()
    }
    for cycle in range(cycles):
        report = reference.run_cycle()
        expected_commits = set(report.committed)
        for name, sim in sims.items():
            committed = sim.run_cycle()
            if check_commits and committed is not None:
                got = set(committed)
                if got != expected_commits:
                    raise DivergenceError(
                        f"{design.name}, cycle {cycle}: backend {name} committed "
                        f"{sorted(got)} but the interpreter committed "
                        f"{sorted(expected_commits)}"
                    )
            for register in design.registers:
                expected = reference.peek(register)
                actual = sim.peek(register)
                if actual != expected:
                    raise DivergenceError(
                        f"{design.name}, cycle {cycle}: register {register!r} is "
                        f"{actual} on {name} but {expected} on the interpreter"
                    )
