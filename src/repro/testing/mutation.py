"""Mutation testing for hardware designs and for the test harness itself.

Generates *plausible bug* variants of a design — exactly the kinds of
mistakes the paper's case studies chase (a write at the wrong port, an
off-by-one constant, an inverted guard, a reordered scheduler) — and
checks that the verification tooling (differential cosimulation, golden
models) actually notices them.

A mutant may be semantically equivalent (e.g. flipping a port on a
register nobody contends on), so harness tests assert a *kill rate*, not
perfection — but specific mutation classes on specific designs are known
killers and are asserted individually.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Tuple

from ..koika.ast import Binop, Const, If, Read, Unop, Write, walk
from ..koika.design import Design
from ..koika.typecheck import typecheck_design
from ..koika.types import mask

#: Binop swaps that preserve typing.
_OP_SWAPS = {
    "add": "sub", "sub": "add",
    "and": "or", "or": "and",
    "eq": "ne", "ne": "eq",
    "ltu": "geu", "geu": "ltu",
    "sll": "srl", "srl": "sll",
}


class Mutation:
    """One applicable mutation: a description plus an in-place applier."""

    def __init__(self, kind: str, description: str,
                 apply: Callable[[], None]):
        self.kind = kind
        self.description = description
        self._apply = apply

    def apply(self) -> None:
        self._apply()

    def __repr__(self) -> str:
        return f"<mutation {self.kind}: {self.description}>"


def enumerate_mutations(design: Design) -> List[Mutation]:
    """All applicable single-point mutations of ``design`` (the design is
    mutated IN PLACE when a mutation is applied — build a fresh design per
    mutant)."""
    mutations: List[Mutation] = []

    def flip_write_port(node: Write) -> Callable[[], None]:
        def apply() -> None:
            node.port ^= 1
        return apply

    def flip_read_port(node: Read) -> Callable[[], None]:
        def apply() -> None:
            node.port ^= 1
        return apply

    def tweak_const(node: Const) -> Callable[[], None]:
        def apply() -> None:
            node.value = (node.value + 1) & mask(node.typ.width)
        return apply

    def swap_binop(node: Binop) -> Callable[[], None]:
        def apply() -> None:
            node.op = _OP_SWAPS[node.op]
        return apply

    for rule_name, rule in design.rules.items():
        for node in walk(rule.body):
            if isinstance(node, Write):
                mutations.append(Mutation(
                    "write-port",
                    f"{rule_name}: {node.reg}.wr{node.port} -> "
                    f"wr{node.port ^ 1}",
                    flip_write_port(node)))
            elif isinstance(node, Read):
                mutations.append(Mutation(
                    "read-port",
                    f"{rule_name}: {node.reg}.rd{node.port} -> "
                    f"rd{node.port ^ 1}",
                    flip_read_port(node)))
            elif isinstance(node, Const) and node.typ is not None \
                    and 0 < node.typ.width <= 32:
                mutations.append(Mutation(
                    "const",
                    f"{rule_name}: constant {node.value} -> "
                    f"{(node.value + 1) & mask(node.typ.width)}",
                    tweak_const(node)))
            elif isinstance(node, Binop) and node.op in _OP_SWAPS:
                mutations.append(Mutation(
                    "binop",
                    f"{rule_name}: {node.op} -> {_OP_SWAPS[node.op]}",
                    swap_binop(node)))

    if len(design.scheduler) >= 2:
        def swap_schedule() -> None:
            design.scheduler[0], design.scheduler[1] = \
                design.scheduler[1], design.scheduler[0]
        mutations.append(Mutation(
            "schedule",
            f"swap schedule entries {design.scheduler[0]} <-> "
            f"{design.scheduler[1]}",
            swap_schedule))
    return mutations


def make_mutant(builder: Callable[[], Design], index: int) -> Tuple[Design, Mutation]:
    """Build a fresh design and apply its ``index``-th mutation."""
    design = builder()
    mutations = enumerate_mutations(design)
    mutation = mutations[index % len(mutations)]
    mutation.apply()
    # Re-typecheck in place: mutations preserve well-typedness.
    typecheck_design(design)
    design.finalized = True
    return design, mutation


def mutant_count(builder: Callable[[], Design]) -> int:
    return len(enumerate_mutations(builder()))


def kill_rate(builder: Callable[[], Design],
              env_factory: Callable[[], object],
              cycles: int = 40,
              sample_every: int = 1) -> Tuple[int, int, List[Mutation]]:
    """Differentially test every ``sample_every``-th mutant against the
    original design on the interpreter; returns (killed, total, survivors).

    A mutant is *killed* when any register value or committed-rule set
    diverges from the original within ``cycles`` cycles.
    """
    from ..semantics.interp import Interpreter

    total = mutant_count(builder)
    killed = 0
    tested = 0
    survivors: List[Mutation] = []
    for index in range(0, total, sample_every):
        original = Interpreter(builder(), env=env_factory())
        mutant_design, mutation = make_mutant(builder, index)
        mutant = Interpreter(mutant_design, env=env_factory())
        tested += 1
        diverged = False
        for _ in range(cycles):
            report_a = original.run_cycle()
            report_b = mutant.run_cycle()
            if set(report_a.committed) != set(report_b.committed) or \
                    original.state != mutant.state:
                diverged = True
                break
        if diverged:
            killed += 1
        else:
            survivors.append(mutation)
    return killed, tested, survivors
