"""Random Kôika design generation for differential testing.

Generates small but gnarly designs — multiple rules contending for the same
registers through every port combination, nested control flow, guards, and
explicit aborts — so that differential tests exercise the conflict-handling
machinery, not just the happy path.

One deliberate restriction: no ``rd1`` is generated after a same-rule
``wr1`` on the same register (the "Goldbergian contraption" of §3.2).
Merged-data models (O4/O5) intentionally ignore that anti-pattern, so it
would create expected divergences; dedicated unit tests cover it instead.
"""

from __future__ import annotations

import random
from typing import List, Optional, Set

from ..koika.ast import (
    Abort,
    Action,
    Binop,
    C,
    Const,
    If,
    Let,
    Read,
    Seq,
    Unop,
    V,
    Write,
    unit,
)
from ..koika.design import Design
from ..koika.types import bits, mask


class _RuleGen:
    def __init__(self, rng: random.Random, design: Design, widths: List[int]):
        self.rng = rng
        self.design = design
        self.regs = list(design.registers)
        self.widths = widths
        self.scope: List[tuple] = []  # (name, width)
        self.wrote1: Set[str] = set()  # same-rule wr1'd registers
        self.let_counter = 0

    def expr(self, width: int, depth: int) -> Action:
        rng = self.rng
        choices = ["const", "const"]
        if depth > 0:
            choices += ["binop", "binop", "unop", "mux", "shift",
                        "extend", "concat"]
        if any(w == width for _, w in self.scope):
            choices += ["var", "var"]
        if any(w == width for w in self.widths):
            choices += ["read", "read"]
        kind = rng.choice(choices)
        if kind == "var":
            name = rng.choice([n for n, w in self.scope if w == width])
            return V(name)
        if kind == "read":
            candidates = [r for r in self.regs
                          if self.design.registers[r].typ.width == width]
            reg = rng.choice(candidates)
            port = rng.choice([0, 0, 1])
            if port == 1 and reg in self.wrote1:
                port = 0
            return Read(reg, port)
        if kind == "binop":
            op = rng.choice(["add", "sub", "and", "or", "xor", "mul",
                             "divu", "remu"])
            return Binop(op, self.expr(width, depth - 1), self.expr(width, depth - 1))
        if kind == "shift":
            op = rng.choice(["sll", "srl", "sra"])
            amount = C(rng.randint(0, width), max(1, width.bit_length()))
            return Binop(op, self.expr(width, depth - 1), amount)
        if kind == "extend":
            # widen then slice back: exercises sextl/zextl + slice codegen
            op = rng.choice(["sextl", "zextl"])
            widened = Unop(op, self.expr(width, depth - 1), param=width * 2)
            offset = rng.randint(0, width)
            return Unop("slice", widened, param=(offset, width))
        if kind == "concat":
            # concat two halves then slice the target width back out
            low_width = max(1, width // 2)
            high_width = width - low_width if width > low_width else 1
            joined = Binop("concat", self.expr(high_width, depth - 1),
                           self.expr(low_width, depth - 1))
            return Unop("slice", joined, param=(0, width)) \
                if high_width + low_width > width else joined
        if kind == "unop":
            op = rng.choice(["not", "neg"])
            return Unop(op, self.expr(width, depth - 1))
        if kind == "mux":
            return If(self.expr(1, depth - 1) if width != 1 else C(rng.getrandbits(1), 1),
                      self.expr(width, depth - 1), self.expr(width, depth - 1))
        return C(self.rng.getrandbits(width) & mask(width), width)

    def action(self, depth: int) -> Action:
        rng = self.rng
        kind = rng.choice(
            ["write", "write", "write", "if", "let", "guard"]
            + (["abort"] if rng.random() < 0.5 else [])
            + (["seq"] if depth > 0 else [])
        )
        if kind == "write":
            reg = rng.choice(self.regs)
            width = self.design.registers[reg].typ.width
            port = rng.choice([0, 0, 0, 1])
            if port == 1:
                self.wrote1.add(reg)
            return Write(reg, port, self.expr(width, 2))
        if kind == "if":
            cond = self.expr(1, 2)
            saved = set(self.wrote1)
            then = self.action(depth - 1) if depth > 0 else self._leaf()
            orelse = self.action(depth - 1) if rng.random() < 0.6 else None
            # wrote1 is kept conservative: union of both branches.
            del saved  # both branches' wr1s stay in self.wrote1
            if orelse is None:
                return If(cond, Seq(then, unit()))
            return If(cond, Seq(then, unit()), Seq(orelse, unit()))
        if kind == "let":
            width = rng.choice(self.widths)
            self.let_counter += 1
            name = f"g{self.let_counter}"
            value = self.expr(width, 2)
            self.scope.append((name, width))
            body = self.action(depth - 1) if depth > 0 else self._leaf()
            self.scope.pop()
            return Let(name, value, Seq(body, unit()))
        if kind == "guard":
            return If(self.expr(1, 2), unit(), Abort())
        if kind == "abort":
            return If(self.expr(1, 1), Abort(), unit())
        parts = [self.action(depth - 1) for _ in range(rng.randint(2, 3))]
        return Seq(*[Seq(p, unit()) for p in parts])

    def _leaf(self) -> Action:
        reg = self.rng.choice(self.regs)
        width = self.design.registers[reg].typ.width
        return Write(reg, 0, self.expr(width, 1))


#: Seeds at or above this value generate *stream* designs (handshaked
#: StreamFifo pipelines) instead of register-contention designs.  The
#: reserved subspace keeps every pre-existing seed's design byte-identical
#: — campaigns and corpus entries recorded before streams existed replay
#: exactly — while letting ``repro fuzz run --seeds 1000000:1000050
#: --stream-oracle`` sweep stream recipes.
STREAM_SEED_BASE = 1_000_000


def random_stream_design(seed: int) -> Design:
    """Generate a stream design from a seed (``seed % 5`` picks the recipe).

    Recipes 0-2 are *healthy* topologies (pipe, fork, join) that satisfy
    every stream invariant under any schedule; recipes 3 and 4 carry
    seeded bugs the stream oracle must catch:

    * ``seed % 5 == 3`` — **dropped beat**: the consumer's hand-rolled
      dequeue skip-shifts a depth-3 FIFO (slot 0 takes slot 2's value,
      slot 1 never moves down), so occupancy accounting stays exact but
      the beat in slot 1 is silently lost whenever the queue runs deep.
      First violation: ``stream:no-drop:s_in``.
    * ``seed % 5 == 4`` — **stuck consumer**: the drain rule guards on a
      ready bit nothing ever sets, so the FIFO fills and stays
      full-with-no-pop forever.  First violation:
      ``stream:backpressure:s_in``.
    """
    from ..designs.stdlib import (STREAM_COUNTER_WIDTH, StreamFifo,
                                  StreamSink, StreamSource, fork_stage,
                                  join_stage, map_stage)
    from ..koika.dsl import guard, seq

    rng = random.Random(seed)
    recipe = seed % 5
    width = rng.choice([8, 16])
    depth = rng.randint(1, 3)
    design = Design(f"stream_{seed}")

    if recipe == 3:
        # Dropped beat: needs occupancy >= 3 before the first buggy pop,
        # so the queue is depth 3 and the drain is paced 4x slower than
        # the source.
        fifo = StreamFifo(design, "s_in", width, depth=3)
        StreamSource(design, "src", fifo, mode="counter")
        cw = fifo.count_width
        phase = design.reg("drain_phase", 8, 0)
        design.rule("drain_tick", phase.wr0(phase.rd0() + C(1, 8)))
        last = design.reg("drain_last", width, 0)
        design.lint_observed.add(last.name)
        design.rule("drain", seq(
            guard((phase.rd0() & C(3, 8)) == C(0, 8)),
            guard(fifo.can_deq()),
            # BUG: slot 0 takes slot 2 directly; slot 1 is never shifted
            # down, so its beat vanishes (counters stay consistent).
            fifo.slots[0].wr0(fifo.slots[2].rd0()),
            fifo.count.wr0(fifo.count.rd0() - C(1, cw)),
            fifo.popped.wr0(
                fifo.popped.rd0() + C(1, STREAM_COUNTER_WIDTH)),
            fifo.data_out.wr0(fifo.slots[0].rd0()),
            last.wr0(fifo.slots[0].rd0()),
        ))
        design.schedule("drain", "drain_tick", "src_emit")
        return design.finalize()

    if recipe == 4:
        # Stuck consumer: the ready bit is never written, so the drain
        # aborts every cycle and the FIFO wedges full.
        fifo = StreamFifo(design, "s_in", width, depth=depth)
        StreamSource(design, "src", fifo, mode="counter")
        ready = design.reg("drain_ready", 1, 0)
        last = design.reg("drain_last", width, 0)
        design.lint_observed.add(last.name)
        design.rule("drain", seq(
            guard(ready.rd0() == C(1, 1)),
            Let("_x", fifo.deq(), last.wr0(V("_x"))),
        ))
        design.schedule("drain", "src_emit")
        return design.finalize()

    src_every = rng.choice([1, 2])
    sink_every = rng.choice([1, 2])
    k = C(rng.getrandbits(width) & mask(width), width)
    if recipe == 0:
        # Pipe: src -> a -> map -> b -> sink.
        a = StreamFifo(design, "a", width, depth=depth)
        b = StreamFifo(design, "b", width, depth=depth)
        source = StreamSource(design, "src", a, mode="counter",
                              every=src_every)
        map_stage(design, "xform", a, b, lambda x: x + k)
        sink = StreamSink(design, "snk", b, every=sink_every)
        design.schedule(sink.rule_names[0], "xform", source.rule_names[0],
                        *sink.rule_names[1:], *source.rule_names[1:])
    elif recipe == 1:
        # Fork: src -> a -> (b, c) -> two sinks.
        a = StreamFifo(design, "a", width, depth=depth)
        b = StreamFifo(design, "b", width, depth=depth)
        c = StreamFifo(design, "c", width, depth=depth)
        source = StreamSource(design, "src", a, mode="counter",
                              every=src_every)
        fork_stage(design, "split", a, [b, c],
                   fns=[lambda x: x, lambda x: x ^ k])
        sink_b = StreamSink(design, "snkb", b)
        sink_c = StreamSink(design, "snkc", c, every=sink_every)
        design.schedule(sink_b.rule_names[0], sink_c.rule_names[0],
                        "split", source.rule_names[0],
                        *sink_c.rule_names[1:], *source.rule_names[1:])
    else:
        # Join: (a, b) -> c -> sink.
        a = StreamFifo(design, "a", width, depth=depth)
        b = StreamFifo(design, "b", width, depth=depth)
        c = StreamFifo(design, "c", width, depth=depth)
        src_a = StreamSource(design, "srca", a, mode="counter")
        src_b = StreamSource(design, "srcb", b, mode="counter",
                             seed=seed & 0xFFFF)
        join_stage(design, "merge", [a, b], c,
                   lambda x, y: x + y)
        sink = StreamSink(design, "snk", c, every=sink_every)
        design.schedule(sink.rule_names[0], "merge",
                        src_a.rule_names[0], src_b.rule_names[0],
                        *sink.rule_names[1:])
    return design.finalize()


def random_design(seed: int, n_registers: Optional[int] = None,
                  n_rules: Optional[int] = None) -> Design:
    """Generate a random, type-correct design from a seed."""
    if seed >= STREAM_SEED_BASE:
        return random_stream_design(seed)
    rng = random.Random(seed)
    n_registers = n_registers or rng.randint(2, 5)
    n_rules = n_rules or rng.randint(1, 4)
    design = Design(f"random_{seed}")
    widths = []
    for i in range(n_registers):
        width = rng.choice([1, 2, 4, 8])
        widths.append(width)
        design.reg(f"r{i}", bits(width), init=rng.getrandbits(width))
    for j in range(n_rules):
        gen = _RuleGen(rng, design, widths)
        body = Seq(*[Seq(gen.action(2), unit()) for _ in range(rng.randint(1, 3))])
        design.rule(f"rule{j}", Seq(body, unit()))
    design.schedule(*design.rules.keys())
    return design.finalize()
