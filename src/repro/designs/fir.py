"""The ``fir`` benchmark: a finite impulse response filter.

A purely combinational design (single rule, no conflicts): each cycle the
filter shifts a new sample into its delay line and emits

    y[n] = sum_k  c_k * x[n - k]

Because there is no scheduling work to skip, this is a design where
Cuttlesim's advantage over RTL simulation is expected to be *narrow*
(§4.1, "On combinational circuits, Cuttlesim's advantage is narrower, as
expected") — both simulators do essentially the same multiply-accumulate
work every cycle.
"""

from __future__ import annotations

from typing import Sequence

from ..koika.ast import Action, C, Let, V
from ..koika.design import Design
from ..koika.dsl import seq

#: A small low-pass-ish integer kernel (matches the paper's "small FIR").
DEFAULT_TAPS: Sequence[int] = (1, 3, 5, 7, 9, 7, 5, 3, 1)


def build_fir(taps: Sequence[int] = DEFAULT_TAPS, width: int = 32) -> Design:
    """Build an n-tap FIR filter over ``width``-bit samples.

    Samples arrive through the ``get_sample`` external port and results
    leave through ``put_result`` — the testbench provides both.
    """
    taps = tuple(taps)
    if not taps:
        raise ValueError("FIR filter needs at least one tap")
    design = Design("fir")
    delay = [design.reg(f"x{k}", width, init=0) for k in range(len(taps) - 1)]
    get_sample = design.extfun("get_sample", 0, width)
    put_result = design.extfun("put_result", width, 0)

    def accumulate(sample_var: Action) -> Action:
        acc: Action = sample_var * C(taps[0], width)
        for k, tap in enumerate(taps[1:]):
            acc = acc + (delay[k].rd0() * C(tap, width))
        return acc

    shifts = []
    for k in range(len(delay) - 1, 0, -1):
        shifts.append(delay[k].wr0(delay[k - 1].rd0()))
    body = Let(
        "sample", get_sample(C(0, 0)),
        seq(
            put_result(accumulate(V("sample"))),
            *(shifts + ([delay[0].wr0(V("sample"))] if delay else [])),
        ),
    )
    design.rule("filter", body)
    design.schedule("filter")
    return design.finalize()


def reference_fir(samples: Sequence[int], taps: Sequence[int] = DEFAULT_TAPS,
                  width: int = 32) -> list:
    """Software golden model of the filter (used by tests)."""
    mask = (1 << width) - 1
    history = [0] * len(taps)
    outputs = []
    for sample in samples:
        history = [sample & mask] + history[:-1]
        acc = 0
        for tap, value in zip(taps, history):
            acc = (acc + tap * value) & mask
        outputs.append(acc)
    return outputs
