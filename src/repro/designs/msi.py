"""A 2-core MSI cache-coherence system (case study 1).

Two cores with L1 "child" caches and a "parent" protocol engine
implementing the MSI protocol over a 4-line address space.  The moving
pieces match the paper's description:

* **MSHRs** — each cache has a miss-status holding register whose tag is
  ``Ready``, ``SendFillReq`` (miss: must request a fill from the parent),
  or ``WaitFillResp`` (waiting for the parent's response).
* **The parent** is either ``Idle`` or ``ConfirmDowngrades`` — the latter
  while it waits for the other core to acknowledge a downgrade.
* Downgrade acknowledgements travel over a *wire*: the downgrading child
  announces completion every cycle at port 0, and the parent's
  ``confirm_downgrades`` rule reads it at port 1 in the same cycle.

``bug=True`` reproduces the case-study deadlock verbatim: the child's
announce rule *accidentally writes at port 1 instead of port 0*.  A write
at port 1 conflicts with the parent's same-cycle read at port 1, so
``confirm_downgrades`` aborts — every cycle, forever: core 0 is stuck in
``WaitFillResp`` and the parent in ``ConfirmDowngrades``, exactly the
state the paper's programmer finds in gdb.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..harness.env import Device, Environment, SimHandle
from ..koika.ast import C, If, Let, Seq, V, enum_const, struct_init, unit
from ..koika.design import Design
from ..koika.dsl import RegArray, guard, mux, seq, when
from ..koika.types import EnumType, StructType, bits

#: Cache-line coherence states.
MSI = EnumType("msi", ["I", "S", "M"])
#: MSHR tags (names straight from the paper).
MSHR = EnumType("mshr_tag", ["Ready", "SendFillReq", "WaitFillResp"])
#: Parent protocol-engine states.
PSTATE = EnumType("pstate", ["Idle", "ConfirmDowngrades"])

N_LINES = 4
ADDR_W = 2

#: Child -> parent fill request.
CREQ = StructType("creq", [("addr", bits(ADDR_W)), ("want", MSI)])
#: Parent -> child fill response.
CRSP = StructType("crsp", [("addr", bits(ADDR_W)), ("state", MSI),
                           ("data", bits(32))])
#: Parent -> child downgrade request.
DREQ = StructType("dreq", [("addr", bits(ADDR_W)), ("to", MSI)])


def build_msi(bug: bool = False) -> Design:
    """Build the coherence system; ``bug=True`` plants the wr1 deadlock."""
    design = Design("msi" + ("_buggy" if bug else ""))

    children = []
    for i in (0, 1):
        p = f"c{i}_"
        child = {
            "states": RegArray(design, f"{p}state", N_LINES, MSI, MSI.I),
            "data": RegArray(design, f"{p}data", N_LINES, 32),
            "mshr": design.reg(f"{p}mshr", MSHR, MSHR.Ready),
            "mshr_addr": design.reg(f"{p}mshr_addr", ADDR_W, 0),
            "mshr_want": design.reg(f"{p}mshr_want", MSI, MSI.I),
            "cmd_valid": design.reg(f"{p}cmd_valid", 1, 0),
            "cmd_addr": design.reg(f"{p}cmd_addr", ADDR_W, 0),
            "cmd_want": design.reg(f"{p}cmd_want", MSI, MSI.I),
            "cmd_data": design.reg(f"{p}cmd_data", 32, 0),
            "result": design.reg(f"{p}result", 32, 0),
            "done": design.reg(f"{p}done", 16, 0),
            # fill request channel (child enq @0, parent deq @1)
            "creq_valid": design.reg(f"{p}creq_valid", 1, 0),
            "creq_data": design.reg(f"{p}creq_data", CREQ, 0),
            # fill response channel (parent enq @1, child deq @0)
            "crsp_valid": design.reg(f"{p}crsp_valid", 1, 0),
            "crsp_data": design.reg(f"{p}crsp_data", CRSP, 0),
            # downgrade request channel (parent enq @1, child deq @0)
            "dreq_valid": design.reg(f"{p}dreq_valid", 1, 0),
            "dreq_data": design.reg(f"{p}dreq_data", DREQ, 0),
            # downgrade-acknowledge *wire* (child announces @0, parent
            # reads @1 the same cycle)
            "ack_valid": design.reg(f"{p}ack_valid", 1, 0),
            "ack_addr": design.reg(f"{p}ack_addr", ADDR_W, 0),
            "ack_data": design.reg(f"{p}ack_data", 32, 0),
            "ack_was_m": design.reg(f"{p}ack_was_m", 1, 0),
            # announcing mode flag
            "announcing": design.reg(f"{p}announcing", 1, 0),
        }
        children.append(child)

    directory = [RegArray(design, f"dir_c{i}", N_LINES, MSI, MSI.I)
                 for i in (0, 1)]
    pmem = RegArray(design, "pmem", N_LINES, 32)
    p_state = design.reg("p_state", PSTATE, PSTATE.Idle)
    p_child = design.reg("p_child", 1, 0)        # requesting child
    p_addr = design.reg("p_addr", ADDR_W, 0)
    p_want = design.reg("p_want", MSI, MSI.I)
    p_to = design.reg("p_to", MSI, MSI.I)        # downgrade target state

    def msi_c(member: str):
        return enum_const(MSI, member)

    # ------------------------------------------------------------------
    # Child rules.
    # ------------------------------------------------------------------
    for i, child in enumerate(children):
        p = f"c{i}_"

        # recv_resp: install the fill response, complete the command.
        addr = V("addr")
        resp = V("resp")
        design.rule(f"{p}recv_resp", seq(
            guard(child["crsp_valid"].rd0() == C(1, 1)),
            Let("resp", child["crsp_data"].rd0(), Let(
                "addr", resp.field("addr"), seq(
                    child["crsp_valid"].wr0(C(0, 1)),
                    child["states"].write(0, addr, resp.field("state")),
                    If(resp.field("state") == msi_c("M"),
                       # write fill: install the store data
                       child["data"].write(0, addr, child["cmd_data"].rd0()),
                       child["data"].write(0, addr, resp.field("data"))),
                    child["result"].wr0(resp.field("data")),
                    child["mshr"].wr0(enum_const(MSHR, "Ready")),
                    child["cmd_valid"].wr0(C(0, 1)),
                    child["done"].wr0(child["done"].rd0() + C(1, 16)),
                ))),
        ))

        # handle_downgrade: honor the parent's downgrade request, then
        # enter announcing mode.
        dreq = V("dreq")
        design.rule(f"{p}handle_downgrade", seq(
            guard(child["dreq_valid"].rd0() == C(1, 1)),
            Let("dreq", child["dreq_data"].rd0(), Let(
                "addr", dreq.field("addr"), seq(
                    child["dreq_valid"].wr0(C(0, 1)),
                    child["ack_addr"].wr0(V("addr")),
                    child["ack_data"].wr0(child["data"].read(0, V("addr"))),
                    child["ack_was_m"].wr0(mux(
                        child["states"].read(0, V("addr")) == msi_c("M"),
                        C(1, 1), C(0, 1))),
                    child["states"].write(0, V("addr"), dreq.field("to")),
                    child["announcing"].wr0(C(1, 1)),
                ))),
        ))

        # announce: while announcing, drive the ack wire every cycle.
        # THE BUG (case study 1): port 1 instead of port 0.
        ack_port = 1 if bug else 0
        design.rule(f"{p}announce", seq(
            guard(child["announcing"].rd0() == C(1, 1)),
            child["ack_valid"].write(ack_port, C(1, 1)),
        ))

        # request: hits complete locally; misses allocate the MSHR.
        st = V("st")
        design.rule(f"{p}request", seq(
            guard(child["cmd_valid"].rd0() == C(1, 1)),
            guard(child["mshr"].rd0() == enum_const(MSHR, "Ready")),
            Let("addr", child["cmd_addr"].rd0(),
                Let("st", child["states"].read(0, V("addr")), seq(
                    If((child["cmd_want"].rd0() == msi_c("S"))
                       & (st != msi_c("I")),
                       # read hit
                       seq(
                           child["result"].wr0(
                               child["data"].read(0, V("addr"))),
                           child["cmd_valid"].wr0(C(0, 1)),
                           child["done"].wr0(
                               child["done"].rd0() + C(1, 16)),
                       ),
                       If((child["cmd_want"].rd0() == msi_c("M"))
                          & (st == msi_c("M")),
                          # write hit
                          seq(
                              child["data"].write(
                                  0, V("addr"), child["cmd_data"].rd0()),
                              child["cmd_valid"].wr0(C(0, 1)),
                              child["done"].wr0(
                                  child["done"].rd0() + C(1, 16)),
                          ),
                          # miss: request a fill
                          seq(
                              child["mshr"].wr0(
                                  enum_const(MSHR, "SendFillReq")),
                              child["mshr_addr"].wr0(V("addr")),
                              child["mshr_want"].wr0(
                                  child["cmd_want"].rd0()),
                          ))),
                ))),
        ))

        # send_fill: push the fill request to the parent.
        design.rule(f"{p}send_fill", seq(
            guard(child["mshr"].rd0() == enum_const(MSHR, "SendFillReq")),
            guard(child["creq_valid"].rd0() == C(0, 1)),
            child["creq_data"].wr0(struct_init(
                CREQ, addr=child["mshr_addr"].rd0(),
                want=child["mshr_want"].rd0())),
            child["creq_valid"].wr0(C(1, 1)),
            child["mshr"].wr0(enum_const(MSHR, "WaitFillResp")),
        ))

    # ------------------------------------------------------------------
    # Parent rules.
    # ------------------------------------------------------------------
    def handle_request(i: int):
        """Process child i's fill request (runs with p_state == Idle)."""
        other = 1 - i
        child, rival = children[i], children[other]
        req = V("req")
        addr = req.field("addr")
        want = req.field("want")
        # Port 1: see directory updates made by an earlier grant this cycle.
        rival_state = directory[other].read(1, addr)
        needs_downgrade = mux(
            want == msi_c("M"), rival_state != msi_c("I"),
            mux(want == msi_c("S"), rival_state == msi_c("M"), C(0, 1)))
        grant = seq(
            guard(child["crsp_valid"].rd1() == C(0, 1)),
            child["crsp_valid"].wr1(C(1, 1)),
            child["crsp_data"].wr1(struct_init(
                CRSP, addr=addr, state=want,
                data=pmem.read(0, addr))),
            directory[i].write(0, addr, want),
        )
        downgrade = seq(
            guard(rival["dreq_valid"].rd1() == C(0, 1)),
            rival["dreq_data"].wr1(struct_init(
                DREQ, addr=addr,
                to=mux(want == msi_c("M"), msi_c("I"), msi_c("S")))),
            rival["dreq_valid"].wr1(C(1, 1)),
            p_state.wr0(enum_const(PSTATE, "ConfirmDowngrades")),
            p_child.wr0(C(i, 1)),
            p_addr.wr0(addr),
            p_want.wr0(want),
            p_to.wr0(mux(want == msi_c("M"), msi_c("I"), msi_c("S"))),
        )
        return seq(
            guard(p_state.rd0() == enum_const(PSTATE, "Idle")),
            guard(children[i]["creq_valid"].rd1() == C(1, 1)),
            children[i]["creq_valid"].wr1(C(0, 1)),
            Let("req", children[i]["creq_data"].rd1(),
                If(needs_downgrade, downgrade, grant)),
        )

    design.rule("parent_handle_req0", handle_request(0))
    design.rule("parent_handle_req1", handle_request(1))

    # confirm_downgrades: wait for the other child's acknowledgement.
    def confirm_for(other: int):
        """Confirmation path when the downgrading child is ``other``."""
        rival = children[other]
        req_child = children[1 - other]
        return seq(
            # The read at port 1 the case study stares at in gdb:
            guard(rival["ack_valid"].rd1() == C(1, 1)),
            # Collect the writeback if the line was Modified.
            when(rival["ack_was_m"].rd1() == C(1, 1),
                 pmem.write(0, p_addr.rd0(), rival["ack_data"].rd1())),
            directory[other].write(0, p_addr.rd0(), p_to.rd0()),
            rival["ack_valid"].wr1(C(0, 1)),
            rival["announcing"].wr1(C(0, 1)),
            # Grant the original request.
            guard(req_child["crsp_valid"].rd1() == C(0, 1)),
            req_child["crsp_valid"].wr1(C(1, 1)),
            req_child["crsp_data"].wr1(struct_init(
                CRSP, addr=p_addr.rd0(), state=p_want.rd0(),
                data=pmem.read(1, p_addr.rd0()))),
            directory[1 - other].write(0, p_addr.rd0(), p_want.rd0()),
            p_state.wr0(enum_const(PSTATE, "Idle")),
        )

    design.rule("parent_confirm_downgrades", seq(
        guard(p_state.rd0() == enum_const(PSTATE, "ConfirmDowngrades")),
        If(p_child.rd0() == C(0, 1),
           confirm_for(other=1),
           confirm_for(other=0)),
    ))

    schedule = []
    for i in (0, 1):
        p = f"c{i}_"
        schedule += [f"{p}recv_resp", f"{p}handle_downgrade",
                     f"{p}announce", f"{p}request", f"{p}send_fill"]
    schedule += ["parent_handle_req0", "parent_handle_req1",
                 "parent_confirm_downgrades"]
    design.schedule(*schedule)
    return design.finalize()


class CoherenceDriver(Device):
    """Testbench driving a script of ``(core, op, addr, data)`` accesses.

    ``op`` is ``"read"`` or ``"write"``.  Each core's next access is poked
    when its previous one completes.  Progress is observable through
    ``completed`` (per core) and ``reads`` (values returned by read ops).

    ``sequential=True`` (the default) issues operations one at a time in
    script order — deterministic, for checking data values.  With
    ``sequential=False`` both cores run their own streams concurrently
    (a stress mode; inter-core ordering is then up to the protocol).
    """

    def __init__(self, script: List[Tuple[int, str, int, int]],
                 sequential: bool = True):
        self.script = list(script)
        self.sequential = sequential
        self.pokes = {f"c{core}_cmd_{field}" for core in (0, 1)
                      for field in ("addr", "want", "data", "valid")}
        self.reset()

    def reset(self) -> None:
        self.queues: List[List[Tuple[str, int, int]]] = [[], []]
        self.global_queue = [(core, op, addr, data)
                             for core, op, addr, data in self.script]
        if not self.sequential:
            for core, op, addr, data in self.script:
                self.queues[core].append((op, addr, data))
        self.inflight: List[Optional[Tuple[str, int, int]]] = [None, None]
        self.completed = [0, 0]
        self.reads: List[List[int]] = [[], []]

    def _retire(self, sim: SimHandle, core: int) -> None:
        p = f"c{core}_"
        done = sim.peek(f"{p}done")
        if self.inflight[core] is not None and done == self.completed[core] + 1:
            op, addr, _ = self.inflight[core]
            if op == "read":
                self.reads[core].append(sim.peek(f"{p}result"))
            self.completed[core] = done
            self.inflight[core] = None

    def _issue(self, sim: SimHandle, core: int, op: str, addr: int,
               data: int) -> None:
        p = f"c{core}_"
        sim.poke(f"{p}cmd_addr", addr)
        sim.poke(f"{p}cmd_want", MSI.S if op == "read" else MSI.M)
        sim.poke(f"{p}cmd_data", data)
        sim.poke(f"{p}cmd_valid", 1)
        self.inflight[core] = (op, addr, data)

    def after_cycle(self, sim: SimHandle) -> None:
        for core in (0, 1):
            self._retire(sim, core)
        if self.sequential:
            if self.inflight == [None, None] and self.global_queue:
                core, op, addr, data = self.global_queue.pop(0)
                self._issue(sim, core, op, addr, data)
            return
        for core in (0, 1):
            if self.inflight[core] is None and self.queues[core] \
                    and not sim.peek(f"c{core}_cmd_valid"):
                op, addr, data = self.queues[core].pop(0)
                self._issue(sim, core, op, addr, data)

    @property
    def all_done(self) -> bool:
        if self.sequential:
            return not self.global_queue and self.inflight == [None, None]
        return (not any(self.queues) and self.inflight == [None, None])


def make_msi_env(script: List[Tuple[int, str, int, int]]) -> Environment:
    env = Environment()
    env.add_device(CoherenceDriver(script))
    return env
