"""An N-core MSI cache-coherence system (case study 1, parameterized).

``make_msi(n_cores, n_lines)`` builds a directory-based MSI protocol:
N cores with L1 "child" caches and one "parent" protocol engine over an
``n_lines``-line address space.  The moving pieces match the paper's
description:

* **MSHRs** — each cache has a miss-status holding register whose tag is
  ``Ready``, ``SendFillReq`` (miss: must request a fill from the parent),
  or ``WaitFillResp`` (waiting for the parent's response).
* **The parent** walks ``Idle`` → ``ProcessRequest`` →
  (``ConfirmDowngrades`` → ``ProcessRequest``)* → ``Idle``: it accepts
  one fill request, then downgrades needy rivals *one at a time* —
  re-checking the directory after each acknowledgement — and finally
  grants.  With two cores this is the paper's protocol with one extra
  pipeline stage; with N cores the re-check loop is what visits every
  sharer.
* Downgrade acknowledgements travel over a *wire*: the downgrading child
  announces completion every cycle at port 0, and the parent's
  ``confirm_downgrades`` rule reads it at port 1 in the same cycle.

``bug=True`` reproduces the case-study deadlock verbatim: the child's
announce rule *accidentally writes at port 1 instead of port 0*.  A write
at port 1 conflicts with the parent's same-cycle read at port 1, so
``confirm_downgrades`` aborts — every cycle, forever: the requesting core
is stuck in ``WaitFillResp`` and the parent in ``ConfirmDowngrades``,
exactly the state the paper's programmer finds in gdb.

``build_msi(bug)`` keeps the original fixed 2-core, 4-line system (the
case study); the parameterized variants (``make_msi(4, 8)``,
``make_msi(8, 16)``, ...) are the workloads the sharded simulation tier
(:mod:`repro.shard`) partitions — each core's cache is almost entirely
shard-private state.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from ..harness.env import Device, Environment, SimHandle
from ..koika.ast import C, If, Let, Seq, V, enum_const, struct_init, unit
from ..koika.design import Design
from ..koika.dsl import RegArray, guard, mux, seq, when
from ..koika.types import EnumType, StructType, bits
from .stdlib import Lfsr

#: Cache-line coherence states.
MSI = EnumType("msi", ["I", "S", "M"])
#: MSHR tags (names straight from the paper).
MSHR = EnumType("mshr_tag", ["Ready", "SendFillReq", "WaitFillResp"])
#: Parent protocol-engine states.  ``ProcessRequest`` holds the accepted
#: request while the parent downgrades rivals one at a time.
PSTATE = EnumType("pstate", ["Idle", "ConfirmDowngrades", "ProcessRequest"])

#: The case study's fixed geometry (kept for compatibility).
N_LINES = 4
ADDR_W = 2

#: Child -> parent fill request (case-study geometry).
CREQ = StructType("creq", [("addr", bits(ADDR_W)), ("want", MSI)])
#: Parent -> child fill response.
CRSP = StructType("crsp", [("addr", bits(ADDR_W)), ("state", MSI),
                           ("data", bits(32))])
#: Parent -> child downgrade request.
DREQ = StructType("dreq", [("addr", bits(ADDR_W)), ("to", MSI)])


def make_msi(n_cores: int = 2, n_lines: int = 4, bug: bool = False,
             traffic: Union[bool, int] = False,
             name: Optional[str] = None) -> Design:
    """Build an ``n_cores``-core, ``n_lines``-line MSI coherence system.

    ``bug=True`` plants the case study's wr1 deadlock in every child's
    announce rule.  ``traffic`` adds a self-driving traffic generator to
    every core (an LFSR-fed rule that issues the next memory access
    whenever the core is idle — mostly to a per-core private line
    stripe, rarely to a shared range), so the design makes progress with
    *no testbench device at all*; that is the workload the sharded
    tier's chunked barriers want, since devices pin the barrier to
    per-cycle granularity.  ``traffic=True`` means a shared access about
    every 2**8 issues; an integer ``s`` (1..11) makes it every 2**s.
    Traffic mode needs power-of-two ``n_cores``/``n_lines`` with
    ``2 * n_cores <= n_lines <= 64`` (lower half of the lines = private
    stripes, upper half = shared).  ``name`` overrides the design name
    (defaults to ``msi{n_cores}x{n_lines}`` plus
    ``_buggy``/``_traffic{s}``).
    """
    if n_cores < 2:
        raise ValueError("make_msi needs at least 2 cores")
    if n_lines < 1:
        raise ValueError("make_msi needs at least 1 line")
    shared_shift = 0
    if traffic:
        shared_shift = 8 if traffic is True else int(traffic)
        if not 1 <= shared_shift <= 11:
            raise ValueError("traffic rarity must be in 1..11 "
                             "(shared access every 2**s issues)")
        if n_cores & (n_cores - 1) or n_lines & (n_lines - 1) \
                or n_lines < 2 * n_cores or n_lines > 64:
            raise ValueError(
                "traffic mode needs power-of-two n_cores and n_lines "
                "with 2 * n_cores <= n_lines <= 64")
    addr_w = max(1, (n_lines - 1).bit_length())
    core_w = max(1, (n_cores - 1).bit_length())
    if name is None:
        name = (f"msi{n_cores}x{n_lines}" + ("_buggy" if bug else "")
                + (f"_traffic{shared_shift}" if traffic else ""))
    design = Design(name)

    # Channel payloads are sized to the address space, so every geometry
    # gets its own struct types (same shapes as the module-level
    # case-study constants).
    creq_t = StructType("creq", [("addr", bits(addr_w)), ("want", MSI)])
    crsp_t = StructType("crsp", [("addr", bits(addr_w)), ("state", MSI),
                                 ("data", bits(32))])
    dreq_t = StructType("dreq", [("addr", bits(addr_w)), ("to", MSI)])

    children = []
    for i in range(n_cores):
        p = f"c{i}_"
        child = {
            "states": RegArray(design, f"{p}state", n_lines, MSI, MSI.I),
            "data": RegArray(design, f"{p}data", n_lines, 32),
            "mshr": design.reg(f"{p}mshr", MSHR, MSHR.Ready),
            "mshr_addr": design.reg(f"{p}mshr_addr", addr_w, 0),
            "mshr_want": design.reg(f"{p}mshr_want", MSI, MSI.I),
            "cmd_valid": design.reg(f"{p}cmd_valid", 1, 0),
            "cmd_addr": design.reg(f"{p}cmd_addr", addr_w, 0),
            "cmd_want": design.reg(f"{p}cmd_want", MSI, MSI.I),
            "cmd_data": design.reg(f"{p}cmd_data", 32, 0),
            "result": design.reg(f"{p}result", 32, 0),
            "done": design.reg(f"{p}done", 16, 0),
            # fill request channel (child enq @0, parent deq @1)
            "creq_valid": design.reg(f"{p}creq_valid", 1, 0),
            "creq_data": design.reg(f"{p}creq_data", creq_t, 0),
            # fill response channel (parent enq @1, child deq @0)
            "crsp_valid": design.reg(f"{p}crsp_valid", 1, 0),
            "crsp_data": design.reg(f"{p}crsp_data", crsp_t, 0),
            # downgrade request channel (parent enq @1, child deq @0)
            "dreq_valid": design.reg(f"{p}dreq_valid", 1, 0),
            "dreq_data": design.reg(f"{p}dreq_data", dreq_t, 0),
            # downgrade-acknowledge *wire* (child announces @0, parent
            # reads @1 the same cycle)
            "ack_valid": design.reg(f"{p}ack_valid", 1, 0),
            "ack_addr": design.reg(f"{p}ack_addr", addr_w, 0),
            "ack_data": design.reg(f"{p}ack_data", 32, 0),
            "ack_was_m": design.reg(f"{p}ack_was_m", 1, 0),
            # announcing mode flag
            "announcing": design.reg(f"{p}announcing", 1, 0),
        }
        children.append(child)

    directory = [RegArray(design, f"dir_c{i}", n_lines, MSI, MSI.I)
                 for i in range(n_cores)]
    pmem = RegArray(design, "pmem", n_lines, 32)
    p_state = design.reg("p_state", PSTATE, PSTATE.Idle)
    p_child = design.reg("p_child", core_w, 0)   # requesting child
    p_rival = design.reg("p_rival", core_w, 0)   # child being downgraded
    p_addr = design.reg("p_addr", addr_w, 0)
    p_want = design.reg("p_want", MSI, MSI.I)
    p_to = design.reg("p_to", MSI, MSI.I)        # downgrade target state

    def msi_c(member: str):
        return enum_const(MSI, member)

    # ------------------------------------------------------------------
    # Child rules.
    # ------------------------------------------------------------------
    for i, child in enumerate(children):
        p = f"c{i}_"

        # recv_resp: install the fill response, complete the command.
        resp = V("resp")
        design.rule(f"{p}recv_resp", seq(
            guard(child["crsp_valid"].rd0() == C(1, 1)),
            Let("resp", child["crsp_data"].rd0(), Let(
                "addr", resp.field("addr"), seq(
                    child["crsp_valid"].wr0(C(0, 1)),
                    child["states"].write(0, V("addr"), resp.field("state")),
                    If(resp.field("state") == msi_c("M"),
                       # write fill: install the store data
                       child["data"].write(0, V("addr"),
                                           child["cmd_data"].rd0()),
                       child["data"].write(0, V("addr"), resp.field("data"))),
                    child["result"].wr0(resp.field("data")),
                    child["mshr"].wr0(enum_const(MSHR, "Ready")),
                    child["cmd_valid"].wr0(C(0, 1)),
                    child["done"].wr0(child["done"].rd0() + C(1, 16)),
                ))),
        ))

        # handle_downgrade: honor the parent's downgrade request, then
        # enter announcing mode.
        dreq = V("dreq")
        design.rule(f"{p}handle_downgrade", seq(
            guard(child["dreq_valid"].rd0() == C(1, 1)),
            Let("dreq", child["dreq_data"].rd0(), Let(
                "addr", dreq.field("addr"), seq(
                    child["dreq_valid"].wr0(C(0, 1)),
                    child["ack_addr"].wr0(V("addr")),
                    child["ack_data"].wr0(child["data"].read(0, V("addr"))),
                    child["ack_was_m"].wr0(mux(
                        child["states"].read(0, V("addr")) == msi_c("M"),
                        C(1, 1), C(0, 1))),
                    child["states"].write(0, V("addr"), dreq.field("to")),
                    child["announcing"].wr0(C(1, 1)),
                ))),
        ))

        # announce: while announcing, drive the ack wire every cycle.
        # THE BUG (case study 1): port 1 instead of port 0.
        ack_port = 1 if bug else 0
        design.rule(f"{p}announce", seq(
            guard(child["announcing"].rd0() == C(1, 1)),
            child["ack_valid"].write(ack_port, C(1, 1)),
        ))

        # request: hits complete locally; misses allocate the MSHR.
        st = V("st")
        design.rule(f"{p}request", seq(
            guard(child["cmd_valid"].rd0() == C(1, 1)),
            guard(child["mshr"].rd0() == enum_const(MSHR, "Ready")),
            Let("addr", child["cmd_addr"].rd0(),
                Let("st", child["states"].read(0, V("addr")), seq(
                    If((child["cmd_want"].rd0() == msi_c("S"))
                       & (st != msi_c("I")),
                       # read hit
                       seq(
                           child["result"].wr0(
                               child["data"].read(0, V("addr"))),
                           child["cmd_valid"].wr0(C(0, 1)),
                           child["done"].wr0(
                               child["done"].rd0() + C(1, 16)),
                       ),
                       If((child["cmd_want"].rd0() == msi_c("M"))
                          & (st == msi_c("M")),
                          # write hit
                          seq(
                              child["data"].write(
                                  0, V("addr"), child["cmd_data"].rd0()),
                              child["cmd_valid"].wr0(C(0, 1)),
                              child["done"].wr0(
                                  child["done"].rd0() + C(1, 16)),
                          ),
                          # miss: request a fill
                          seq(
                              child["mshr"].wr0(
                                  enum_const(MSHR, "SendFillReq")),
                              child["mshr_addr"].wr0(V("addr")),
                              child["mshr_want"].wr0(
                                  child["cmd_want"].rd0()),
                          ))),
                ))),
        ))

        # send_fill: push the fill request to the parent.
        design.rule(f"{p}send_fill", seq(
            guard(child["mshr"].rd0() == enum_const(MSHR, "SendFillReq")),
            guard(child["creq_valid"].rd0() == C(0, 1)),
            child["creq_data"].wr0(struct_init(
                creq_t, addr=child["mshr_addr"].rd0(),
                want=child["mshr_want"].rd0())),
            child["creq_valid"].wr0(C(1, 1)),
            child["mshr"].wr0(enum_const(MSHR, "WaitFillResp")),
        ))

    # ------------------------------------------------------------------
    # Traffic generators (traffic mode only): whenever a core is idle,
    # issue its next access — LFSR-picked address and op, mostly inside
    # the core's private line stripe, rarely (1/256) into the shared
    # upper half.  Everything a generator touches is core-private, so
    # under the sharded tier these rules never cross shards.
    # ------------------------------------------------------------------
    if traffic:
        half = n_lines // 2
        priv = half // n_cores  # power-of-two stripe, >= 1
        priv_bits = (priv - 1).bit_length()
        shared_bits = (half - 1).bit_length()  # <= 5 (n_lines <= 64)
        # LFSR bit budget: [0:s] rarity test, [10] op choice, [11:16]
        # address offset — offsets never alias the zeroed rarity bits,
        # so shared accesses still spread over the whole shared range.
        for i, child in enumerate(children):
            p = f"c{i}_"
            lfsr = Lfsr(design, f"{p}lfsr", 16,
                        seed=((0xACE1 + 0x9E37 * i) & 0xFFFF) or 1)
            rnd = V("rnd")
            priv_addr = C(i * priv, addr_w)
            if priv > 1:
                priv_addr = priv_addr | rnd[11:11 + priv_bits].zext(addr_w)
            shared_addr = C(half, addr_w) | \
                rnd[11:11 + shared_bits].zext(addr_w)
            design.rule(f"{p}traffic", seq(
                guard(child["cmd_valid"].rd0() == C(0, 1)),
                guard(child["mshr"].rd0() == enum_const(MSHR, "Ready")),
                Let("rnd", lfsr.value(0), seq(
                    child["cmd_addr"].wr0(mux(
                        rnd[0:shared_shift] == C(0, shared_shift),
                        shared_addr, priv_addr)),
                    child["cmd_want"].wr0(mux(
                        rnd[10] == C(1, 1), msi_c("M"), msi_c("S"))),
                    child["cmd_data"].wr0(rnd.zext(32)),
                    child["cmd_valid"].wr0(C(1, 1)),
                )),
                lfsr.step(0),
            ))

    # ------------------------------------------------------------------
    # Parent rules.
    # ------------------------------------------------------------------
    def handle_request(i: int):
        """Accept child i's fill request (runs with p_state == Idle).

        Only latches the request; the downgrade walk and the grant run
        in ``ProcessRequest``.  The ``p_state`` wr0 here blocks the
        same-cycle rd0 in every later ``handle_req`` rule, so exactly
        one request is accepted per Idle window (lowest core index
        wins the cycle).
        """
        child = children[i]
        req = V("req")
        return seq(
            guard(p_state.rd0() == enum_const(PSTATE, "Idle")),
            guard(child["creq_valid"].rd1() == C(1, 1)),
            child["creq_valid"].wr1(C(0, 1)),
            Let("req", child["creq_data"].rd1(), seq(
                p_addr.wr0(req.field("addr")),
                p_want.wr0(req.field("want")),
            )),
            p_child.wr0(C(i, core_w)),
            p_state.wr0(enum_const(PSTATE, "ProcessRequest")),
        )

    for i in range(n_cores):
        design.rule(f"parent_handle_req{i}", handle_request(i))

    # parent_process: with a request latched, either start downgrading
    # the first rival whose directory state conflicts, or — when no
    # rival conflicts any more — grant.
    def need_for(j: int):
        """Does rival j's directory entry block the latched request?"""
        rival_state = directory[j].read(0, p_addr.rd0())
        return mux(
            p_want.rd0() == msi_c("M"), rival_state != msi_c("I"),
            mux(p_want.rd0() == msi_c("S"), rival_state == msi_c("M"),
                C(0, 1)))

    def downgrade(j: int):
        rival = children[j]
        return seq(
            guard(rival["dreq_valid"].rd1() == C(0, 1)),
            rival["dreq_data"].wr1(struct_init(
                dreq_t, addr=p_addr.rd0(),
                to=mux(p_want.rd0() == msi_c("M"), msi_c("I"),
                       msi_c("S")))),
            rival["dreq_valid"].wr1(C(1, 1)),
            p_rival.wr0(C(j, core_w)),
            p_to.wr0(mux(p_want.rd0() == msi_c("M"), msi_c("I"),
                         msi_c("S"))),
            p_state.wr0(enum_const(PSTATE, "ConfirmDowngrades")),
        )

    def grant(i: int):
        child = children[i]
        return seq(
            guard(child["crsp_valid"].rd1() == C(0, 1)),
            child["crsp_valid"].wr1(C(1, 1)),
            child["crsp_data"].wr1(struct_init(
                crsp_t, addr=p_addr.rd0(), state=p_want.rd0(),
                data=pmem.read(0, p_addr.rd0()))),
            directory[i].write(0, p_addr.rd0(), p_want.rd0()),
            p_state.wr0(enum_const(PSTATE, "Idle")),
        )

    def process_for(i: int):
        """Downgrade-or-grant when the requesting child is ``i``."""
        body = grant(i)
        for j in reversed([j for j in range(n_cores) if j != i]):
            body = If(need_for(j), downgrade(j), body)
        return body

    process = process_for(n_cores - 1)
    for i in reversed(range(n_cores - 1)):
        process = If(p_child.rd0() == C(i, core_w), process_for(i), process)
    design.rule("parent_process", seq(
        guard(p_state.rd0() == enum_const(PSTATE, "ProcessRequest")),
        process,
    ))

    # confirm_downgrades: wait for the downgrading child's wire
    # acknowledgement, retire it, and loop back to ProcessRequest to
    # re-check the remaining rivals (or grant).
    def confirm_for(j: int):
        rival = children[j]
        return seq(
            # The read at port 1 the case study stares at in gdb:
            guard(rival["ack_valid"].rd1() == C(1, 1)),
            # Collect the writeback if the line was Modified.
            when(rival["ack_was_m"].rd1() == C(1, 1),
                 pmem.write(0, p_addr.rd0(), rival["ack_data"].rd1())),
            directory[j].write(0, p_addr.rd0(), p_to.rd0()),
            rival["ack_valid"].wr1(C(0, 1)),
            rival["announcing"].wr1(C(0, 1)),
            p_state.wr0(enum_const(PSTATE, "ProcessRequest")),
        )

    confirm = confirm_for(n_cores - 1)
    for j in reversed(range(n_cores - 1)):
        confirm = If(p_rival.rd0() == C(j, core_w), confirm_for(j), confirm)
    design.rule("parent_confirm_downgrades", seq(
        guard(p_state.rd0() == enum_const(PSTATE, "ConfirmDowngrades")),
        confirm,
    ))

    schedule = []
    for i in range(n_cores):
        p = f"c{i}_"
        schedule += [f"{p}recv_resp", f"{p}handle_downgrade",
                     f"{p}announce", f"{p}request", f"{p}send_fill"]
        if traffic:
            schedule.append(f"{p}traffic")
    schedule += [f"parent_handle_req{i}" for i in range(n_cores)]
    schedule += ["parent_process", "parent_confirm_downgrades"]
    design.schedule(*schedule)
    return design.finalize()


def build_msi(bug: bool = False) -> Design:
    """The case study's fixed 2-core, 4-line system (compat entry point)."""
    return make_msi(2, N_LINES, bug=bug,
                    name="msi" + ("_buggy" if bug else ""))


class CoherenceDriver(Device):
    """Testbench driving a script of ``(core, op, addr, data)`` accesses.

    ``op`` is ``"read"`` or ``"write"``.  Each core's next access is poked
    when its previous one completes.  Progress is observable through
    ``completed`` (per core) and ``reads`` (values returned by read ops).

    ``sequential=True`` (the default) issues operations one at a time in
    script order — deterministic, for checking data values.  With
    ``sequential=False`` every core runs its own stream concurrently
    (a stress mode; inter-core ordering is then up to the protocol).

    ``n_cores`` defaults to 2, or more when the script names a higher
    core index.
    """

    def __init__(self, script: List[Tuple[int, str, int, int]],
                 sequential: bool = True, n_cores: Optional[int] = None):
        self.script = list(script)
        if n_cores is None:
            n_cores = max([2] + [core + 1 for core, _, _, _ in self.script])
        self.n_cores = n_cores
        self.sequential = sequential
        self.pokes = {f"c{core}_cmd_{field}" for core in range(n_cores)
                      for field in ("addr", "want", "data", "valid")}
        self.reset()

    def reset(self) -> None:
        n = self.n_cores
        self.queues: List[List[Tuple[str, int, int]]] = [[] for _ in range(n)]
        self.global_queue = [(core, op, addr, data)
                             for core, op, addr, data in self.script]
        if not self.sequential:
            for core, op, addr, data in self.script:
                self.queues[core].append((op, addr, data))
        self.inflight: List[Optional[Tuple[str, int, int]]] = [None] * n
        self.completed = [0] * n
        self.reads: List[List[int]] = [[] for _ in range(n)]

    def _retire(self, sim: SimHandle, core: int) -> None:
        p = f"c{core}_"
        done = sim.peek(f"{p}done")
        if self.inflight[core] is not None and done == self.completed[core] + 1:
            op, addr, _ = self.inflight[core]
            if op == "read":
                self.reads[core].append(sim.peek(f"{p}result"))
            self.completed[core] = done
            self.inflight[core] = None

    def _issue(self, sim: SimHandle, core: int, op: str, addr: int,
               data: int) -> None:
        p = f"c{core}_"
        sim.poke(f"{p}cmd_addr", addr)
        sim.poke(f"{p}cmd_want", MSI.S if op == "read" else MSI.M)
        sim.poke(f"{p}cmd_data", data)
        sim.poke(f"{p}cmd_valid", 1)
        self.inflight[core] = (op, addr, data)

    def after_cycle(self, sim: SimHandle) -> None:
        for core in range(self.n_cores):
            self._retire(sim, core)
        if self.sequential:
            if not any(self.inflight) and self.global_queue:
                core, op, addr, data = self.global_queue.pop(0)
                self._issue(sim, core, op, addr, data)
            return
        for core in range(self.n_cores):
            if self.inflight[core] is None and self.queues[core] \
                    and not sim.peek(f"c{core}_cmd_valid"):
                op, addr, data = self.queues[core].pop(0)
                self._issue(sim, core, op, addr, data)

    @property
    def all_done(self) -> bool:
        if self.sequential:
            return not self.global_queue and not any(self.inflight)
        return (not any(self.queues) and not any(self.inflight))


def make_msi_env(script: List[Tuple[int, str, int, int]],
                 sequential: bool = True,
                 n_cores: Optional[int] = None) -> Environment:
    env = Environment()
    env.add_device(CoherenceDriver(script, sequential=sequential,
                                   n_cores=n_cores))
    return env
