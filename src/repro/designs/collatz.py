"""The ``collatz`` benchmark: the paper's "trivial state machine".

Two mutually exclusive rules contend on one register — the minimal design
that shows the difference between sequential early-exit simulation (one
rule body per cycle) and RTL simulation (both bodies plus commit muxes
every cycle, §2.3).
"""

from __future__ import annotations

from ..koika.ast import C, If, Let, V
from ..koika.design import Design
from ..koika.dsl import guard, seq


def build_collatz(seed: int = 19, width: int = 32) -> Design:
    """The Collatz iteration, one step per cycle.

    ``rl_even`` halves even values; ``rl_odd`` maps odd values to ``3x+1``.
    Exactly one rule commits each cycle (they are mutually exclusive via
    guards), so the sequence ``x`` walks the Collatz orbit of ``seed``.
    """
    design = Design("collatz")
    x = design.reg("x", width, init=seed)
    design.rule(
        "rl_even",
        seq(
            guard(x.rd0()[0] == C(0, 1)),
            x.wr0(x.rd0() >> 1),
        ),
    )
    design.rule(
        "rl_odd",
        seq(
            guard(x.rd0()[0] == C(1, 1)),
            x.wr0((x.rd0() * C(3, width)) + C(1, width)),
        ),
    )
    design.schedule("rl_even", "rl_odd")
    return design.finalize()


def build_stm(width: int = 32) -> Design:
    """The two-state machine of §2.1, verbatim.

    State ``st`` alternates between ``A`` and ``B``; the active rule applies
    ``fA`` or ``fB`` ("potentially complex work") to ``x`` and the external
    input, and puts the result on the output port.
    """
    from ..koika.types import EnumType

    state = EnumType("state", ["A", "B"])
    design = Design("stm")
    st = design.reg("st", state, init=state.A)
    x = design.reg("x", width, init=0)
    get_input = design.extfun("get_input", 0, width)
    put_output = design.extfun("put_output", width, 0)

    # fA and fB stand in for nontrivial combinational work.
    arg_x, arg_in = V("vx"), V("vin")
    design.fn("fA", [("vx", width), ("vin", width)],
              ((arg_x ^ arg_in) + C(0x9E3779B9 & ((1 << width) - 1), width)))
    design.fn("fB", [("vx", width), ("vin", width)],
              ((arg_x + arg_in) ^ (arg_x >> 3)))

    fA, fB = design.fns["fA"], design.fns["fB"]

    design.rule(
        "rlA",
        seq(
            guard(st.rd0() == C(state.A, state)),
            st.wr0(C(state.B, state)),
            Let("new_x", fA(x.rd0(), get_input(C(0, 0))),
                seq(x.wr0(V("new_x")), put_output(V("new_x")))),
        ),
    )
    design.rule(
        "rlB",
        seq(
            guard(st.rd0() == C(state.B, state)),
            st.wr0(C(state.A, state)),
            Let("new_x", fB(x.rd0(), get_input(C(0, 0))),
                seq(x.wr0(V("new_x")), put_output(V("new_x")))),
        ),
    )
    design.schedule("rlA", "rlB")
    return design.finalize()
