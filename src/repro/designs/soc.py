"""A mini-SoC: the rv32i core and the UART in one Kôika design.

Demonstrates design composition — the core's four rules and the UART's
seven run in one scheduler, simulated together, cycle-accurately, on any
backend.  Software running on the core prints characters through the
UART by memory-mapped IO:

* store a byte to ``UART_TX_ADDR`` — the SoC device enqueues it into the
  (in-design) UART TX FIFO;
* load from ``UART_STATUS_ADDR`` — returns 1 while the TX FIFO is busy,
  so software busy-waits before each character.

The UART's serial line is looped back inside the design; the testbench
collects the de-serialized bytes from the RX FIFO.  A store of a full
sentence comes out the other end of a bit-serial wire protocol, having
crossed two FSMs and a baud divider — all in one simulated design.
"""

from __future__ import annotations

from typing import List

from ..harness.env import Environment, SimHandle
from ..koika.design import Design
from ..riscv.assembler import Program
from .rv32.core import add_rv32_core
from .rv32.memory import RV32MemoryDevice
from .uart import (STREAM_POP_POKES, STREAM_PUSH_POKES, build_uart,
                   poke_stream_pop, poke_stream_push)

UART_TX_ADDR = 0x40000010
UART_STATUS_ADDR = 0x40000014


def build_soc(divisor: int = 2) -> Design:
    """One design containing the core and a loopback UART (prefixed
    ``u_``), composed with :func:`repro.koika.instantiate`."""
    from ..koika.module import instantiate

    design = Design("soc")
    add_rv32_core(design, nregs=32, predictor="pc4")
    instantiate(design, build_uart(divisor=divisor), "u_")
    return design.finalize()


class SocDevice(RV32MemoryDevice):
    """Core memory plus the MMIO bridge into the in-design UART."""

    def __init__(self, program: Program, uart_prefix: str = "u_"):
        super().__init__(program)
        self.uart_prefix = uart_prefix
        self.pokes = set(self.pokes) \
            | {t.format(s=f"{uart_prefix}tx_fifo")
               for t in STREAM_PUSH_POKES} \
            | {t.format(s=f"{uart_prefix}rx_fifo")
               for t in STREAM_POP_POKES}
        self.printed: List[int] = []

    def reset(self) -> None:
        super().reset()
        self.printed = []

    def after_cycle(self, sim: SimHandle) -> None:
        u = self.uart_prefix
        # Intercept UART MMIO before the generic memory handling.
        if sim.peek("toDMem_valid"):
            from .rv32.common import DMEM_REQ

            request = DMEM_REQ.unpack(sim.peek("toDMem_data"))
            addr = request["addr"]
            if request["is_store"] and addr == UART_TX_ADDR:
                if not sim.peek(f"{u}tx_fifo_count"):
                    poke_stream_push(sim, f"{u}tx_fifo",
                                     request["data"] & 0xFF)
                # A store to a busy FIFO is dropped; software must poll.
                sim.poke("toDMem_valid", 0)
            elif not request["is_store"] and addr == UART_STATUS_ADDR:
                busy = sim.peek(f"{u}tx_fifo_count")
                sim.poke("fromDMem_data", busy)
                sim.poke("fromDMem_valid", 1)
                sim.poke("toDMem_valid", 0)
        super().after_cycle(sim)
        # Drain the UART's RX FIFO into the "printed" stream.
        if sim.peek(f"{u}rx_fifo_count"):
            self.printed.append(poke_stream_pop(sim, f"{u}rx_fifo"))

    @property
    def printed_text(self) -> str:
        return "".join(chr(b) for b in self.printed)


def make_soc_env(program: Program) -> Environment:
    env = Environment()
    env.add_device(SocDevice(program))
    return env


def print_string_source(text: str) -> str:
    """RV32 assembly that prints ``text`` through the UART MMIO port."""
    data_words = ", ".join(str(ord(ch)) for ch in text)
    return f"""
        la   s0, text
        li   s1, {len(text)}
        li   a1, {UART_TX_ADDR:#x}
        li   a2, {UART_STATUS_ADDR:#x}
    char_loop:
        beqz s1, done
    wait_tx:
        lw   t0, 0(a2)        # poll the TX-busy status register
        bnez t0, wait_tx
        lw   t1, 0(s0)
        sw   t1, 0(a1)        # transmit one character
        addi s0, s0, 4
        addi s1, s1, -1
        j    char_loop
    done:
        li   t2, 0x40000000
        sw   s1, 0(t2)
    halt:
        j    halt
    .org 0x400
    text:
        .word {data_words}
    """
