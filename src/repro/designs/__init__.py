"""The paper's benchmark designs (Table 1) plus the case-study systems.

``TABLE1_DESIGNS`` maps benchmark names to builder functions, in the order
Table 1 lists them.
"""

from .collatz import build_collatz, build_stm
from .dsp import DSP_GAIN, DSP_TAPS, build_dsp, reference_dsp
from .fft import build_fft, fixed_point_fft_stage
from .fir import DEFAULT_TAPS, build_fir, reference_fir
from .msi import CoherenceDriver, build_msi, make_msi, make_msi_env
from .prodcons import build_prodcons, reference_prodcons
from .router import build_router
from .soc import SocDevice, build_soc, make_soc_env, print_string_source
from .stdlib import (Fifo2, Lfsr, RisingEdge, SaturatingCounter, SkidBuffer,
                     StreamFifo, StreamSink, StreamSource, fork_stage,
                     join_stage, lfsr_reference, map_stage)
from .uart import UartDriver, build_uart, make_uart_env
from .rv32 import (RV32MemoryDevice, add_rv32_core, build_rv32e, build_rv32i,
                   build_rv32i_bp, build_rv32i_bypass, build_rv32i_mc,
                   build_rv32im, make_core_env, run_program)

#: Benchmark name -> design builder, in Table 1 order.
TABLE1_DESIGNS = {
    "collatz": build_collatz,
    "fir": build_fir,
    "fft": build_fft,
    "rv32i": build_rv32i,
    "rv32e": build_rv32e,
    "rv32i-bp": build_rv32i_bp,
    "rv32i-mc": build_rv32i_mc,
}

__all__ = [
    "build_collatz", "build_stm", "build_fft", "fixed_point_fft_stage",
    "DEFAULT_TAPS", "build_fir", "reference_fir",
    "CoherenceDriver", "build_msi", "make_msi", "make_msi_env",
    "UartDriver", "build_uart", "make_uart_env",
    "SocDevice", "build_soc", "make_soc_env", "print_string_source",
    "Fifo2", "Lfsr", "RisingEdge", "SaturatingCounter",
    "SkidBuffer", "StreamFifo", "StreamSink", "StreamSource",
    "fork_stage", "join_stage", "lfsr_reference", "map_stage",
    "DSP_GAIN", "DSP_TAPS", "build_dsp", "reference_dsp",
    "build_prodcons", "reference_prodcons", "build_router",
    "RV32MemoryDevice", "add_rv32_core", "build_rv32e", "build_rv32i",
    "build_rv32i_bp", "build_rv32i_bypass", "build_rv32i_mc",
    "build_rv32im", "make_core_env",
    "run_program",
    "TABLE1_DESIGNS",
]
