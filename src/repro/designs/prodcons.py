"""The ``prodcons`` bundled design: a producer-consumer SoC skeleton with
end-to-end backpressure.

A counter producer feeds a credit-based skid buffer, whose output is
split byte-wise into two parallel lanes, transformed, and re-joined
before a *slow* consumer (one beat every two cycles)::

    src -> in_q -> [ingress] -> skid -> [split] -> hi_q -> [hi_xform] -> him_q \\
                                                                            [merge] -> out_q -> sink (every=2)
                                        [split] -> lo_q -> [lo_xform] -> lom_q /

Because the sink runs at half rate, backpressure propagates the whole
way back: ``out_q`` fills, the join stalls, the lane FIFOs fill, the
fork stalls, the skid buffer runs out of credits, and finally the
producer itself pauses — without ever dropping or reordering a beat.
That full-chain stall/credit behavior is what the stream oracle's
conservation and bounded-stall checkers exercise on this design.
"""

from __future__ import annotations

from typing import List

from ..koika.ast import Action, C
from ..koika.design import Design
from .stdlib import (SkidBuffer, StreamFifo, StreamSink, StreamSource,
                     fork_stage, join_stage, map_stage)

WIDTH = 16
MASK_LO = 0xFF


def build_prodcons(depth: int = 2) -> Design:
    """Build the producer-consumer pipeline (16-bit payloads)."""
    design = Design("prodcons")
    in_q = StreamFifo(design, "in_q", WIDTH, depth=depth)
    skid = SkidBuffer(design, "skid", WIDTH, depth=depth)
    hi_q = StreamFifo(design, "hi_q", WIDTH, depth=depth)
    lo_q = StreamFifo(design, "lo_q", WIDTH, depth=depth)
    him_q = StreamFifo(design, "him_q", WIDTH, depth=depth)
    lom_q = StreamFifo(design, "lom_q", WIDTH, depth=depth)
    out_q = StreamFifo(design, "out_q", WIDTH, depth=depth)

    source = StreamSource(design, "src", in_q, mode="counter")
    map_stage(design, "ingress", in_q, skid, lambda x: x)
    fork_stage(design, "split", skid, [hi_q, lo_q],
               fns=[lambda x: x >> 8, lambda x: x & C(MASK_LO, WIDTH)])
    map_stage(design, "hi_xform", hi_q, him_q,
              lambda x: x + C(1, WIDTH))
    map_stage(design, "lo_xform", lo_q, lom_q,
              lambda x: x ^ C(MASK_LO, WIDTH))
    join_stage(design, "merge", [him_q, lom_q], out_q,
               lambda hi, lo: (hi << 8) | lo)
    sink = StreamSink(design, "snk", out_q, every=2)

    design.schedule(sink.rule_names[0], "merge", "hi_xform", "lo_xform",
                    "split", "ingress", *source.rule_names,
                    *sink.rule_names[1:])
    return design.finalize()


def reference_prodcons(n_beats: int) -> List[int]:
    """Software golden model: the first ``n_beats`` sink payloads."""
    out = []
    for x in range(n_beats):
        hi = ((x >> 8) + 1) & 0xFFFF
        lo = (x & MASK_LO) ^ MASK_LO
        out.append(((hi << 8) | lo) & 0xFFFF)
    return out
