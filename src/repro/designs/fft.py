"""The ``fft`` benchmark: butterfly stages of a radix-2 FFT.

A combinational-heavy design: every cycle executes one full butterfly
stage over the whole sample array (fixed-point complex multiplies, adds,
subtracts), cycling ``load -> stage 0 -> ... -> stage log2(N)-1``.  Like
``fir``, there is almost no control to skip, so it probes the lower bound
of Cuttlesim's advantage over RTL simulation.

Arithmetic is Q2.14 fixed point on 16-bit two's complement values; the
``fixed_point_fft_stage`` golden model below replicates it bit-exactly for
the tests.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from ..koika.ast import Action, Binop, C, If, Let, Seq, V
from ..koika.design import Design
from ..koika.dsl import seq, switch
from ..koika.types import to_signed, truncate

WIDTH = 16
FRAC_BITS = 14
_PROD_WIDTH = 2 * WIDTH


def _twiddles(n: int) -> List[Tuple[int, int]]:
    """Q2.14 encodings of exp(-2*pi*i*k/n) for k in [0, n/2)."""
    out = []
    for k in range(n // 2):
        angle = -2.0 * math.pi * k / n
        real = int(round(math.cos(angle) * (1 << FRAC_BITS)))
        imag = int(round(math.sin(angle) * (1 << FRAC_BITS)))
        out.append((truncate(real, WIDTH), truncate(imag, WIDTH)))
    return out


def _stage_plan(n: int) -> List[List[Tuple[int, int, int]]]:
    """Per stage: list of (index_a, index_b, twiddle_index) butterflies."""
    stages = []
    log_n = n.bit_length() - 1
    for s in range(log_n):
        half = 1 << s
        span = half * 2
        plan = []
        for base in range(0, n, span):
            for j in range(half):
                plan.append((base + j, base + j + half, j * (n // span)))
        stages.append(plan)
    return stages


def build_fft(n: int = 8) -> Design:
    """Build the FFT butterfly engine for ``n`` points (a power of two).

    Phase ``log2(n)`` (the last value of the ``stage`` counter) reloads the
    sample array from the ``get_sample`` external port; phases ``0`` to
    ``log2(n)-1`` apply the butterfly stages in place.
    """
    if n & (n - 1) or n < 4:
        raise ValueError("n must be a power of two >= 4")
    log_n = n.bit_length() - 1
    design = Design("fft")
    stage_width = max(2, (log_n + 1).bit_length())
    stage = design.reg("stage", stage_width, init=log_n)  # start by loading
    res = [design.reg(f"re{i}", WIDTH, init=0) for i in range(n)]
    ims = [design.reg(f"im{i}", WIDTH, init=0) for i in range(n)]
    get_sample = design.extfun("get_sample", stage_width + 4, WIDTH)
    put_result = design.extfun("put_result", WIDTH, 0)
    twiddles = _twiddles(n)

    def smul(a: Action, b_const: int) -> Action:
        """Signed Q2.14 multiply by a constant: widen, multiply, shift."""
        wide_a = a.sext(_PROD_WIDTH)
        wide_b = C(truncate(to_signed(b_const, WIDTH), _PROD_WIDTH), _PROD_WIDTH)
        return (wide_a * wide_b).sra(FRAC_BITS)[0:WIDTH]

    cases = []
    for s, plan in enumerate(_stage_plan(n)):
        writes: List[Action] = []
        for (ia, ib, tw) in plan:
            w_re, w_im = twiddles[tw]
            a_re, a_im = res[ia].rd0(), ims[ia].rd0()
            b_re, b_im = res[ib].rd0(), ims[ib].rd0()
            t_re = smul(b_re, w_re) - smul(b_im, w_im)
            t_im = smul(b_re, w_im) + smul(b_im, w_re)
            body = seq(
                res[ia].wr0(V(f"ta_re_{s}_{ia}") + V(f"t_re_{s}_{ia}")),
                ims[ia].wr0(V(f"ta_im_{s}_{ia}") + V(f"t_im_{s}_{ia}")),
                res[ib].wr0(V(f"ta_re_{s}_{ia}") - V(f"t_re_{s}_{ia}")),
                ims[ib].wr0(V(f"ta_im_{s}_{ia}") - V(f"t_im_{s}_{ia}")),
            )
            writes.append(
                Let(f"ta_re_{s}_{ia}", a_re,
                    Let(f"ta_im_{s}_{ia}", a_im,
                        Let(f"t_re_{s}_{ia}", t_re,
                            Let(f"t_im_{s}_{ia}", t_im, body))))
            )
        writes.append(stage.wr0(C(s + 1, stage_width)))
        cases.append((C(s, stage_width), seq(*writes)))

    # Load phase: pull n fresh samples, emit one result, restart at stage 0.
    load_actions: List[Action] = []
    for i in range(n):
        load_actions.append(res[i].wr0(get_sample(C(2 * i, stage_width + 4))))
        load_actions.append(ims[i].wr0(get_sample(C(2 * i + 1, stage_width + 4))))
    load_actions.append(put_result(res[0].rd1()))
    load_actions.append(stage.wr0(C(0, stage_width)))
    cases.append((C(log_n, stage_width), seq(*load_actions)))

    design.rule("butterfly", switch(stage.rd0(), cases))
    design.schedule("butterfly")
    return design.finalize()


# ----------------------------------------------------------------------
# Bit-exact golden model (shared by the unit tests).
# ----------------------------------------------------------------------

def _smul_ref(a: int, b: int) -> int:
    wide = truncate(to_signed(a, WIDTH) * to_signed(b, WIDTH), _PROD_WIDTH)
    shifted = to_signed(wide, _PROD_WIDTH) >> FRAC_BITS
    return truncate(shifted, WIDTH)


def fixed_point_fft_stage(reals: Sequence[int], imags: Sequence[int],
                          stage_index: int, n: int) -> Tuple[List[int], List[int]]:
    """Apply one butterfly stage exactly as the hardware does."""
    twiddles = _twiddles(n)
    out_re, out_im = list(reals), list(imags)
    for (ia, ib, tw) in _stage_plan(n)[stage_index]:
        w_re, w_im = twiddles[tw]
        t_re = truncate(_smul_ref(reals[ib], w_re) - _smul_ref(imags[ib], w_im),
                        WIDTH)
        t_im = truncate(_smul_ref(reals[ib], w_im) + _smul_ref(imags[ib], w_re),
                        WIDTH)
        out_re[ia] = truncate(reals[ia] + t_re, WIDTH)
        out_im[ia] = truncate(imags[ia] + t_im, WIDTH)
        out_re[ib] = truncate(reals[ia] - t_re, WIDTH)
        out_im[ib] = truncate(imags[ia] - t_im, WIDTH)
    return out_re, out_im
