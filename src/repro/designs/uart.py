"""A UART transmitter/receiver pair with a serial loopback.

A control-dominated design (two interacting finite state machines plus a
baud-rate divider) — the class of design where rule-based modeling and
Cuttlesim's early-exit compilation shine: in any given cycle most rules
fail their state guards immediately.

Structure (all in one design, TX wired to RX through the ``line`` bit):

* ``baud`` — divides cycles by ``divisor`` and pulses ``tick``;
* ``tx_start`` — pops a byte from the TX FIFO, drives the start bit;
* ``tx_shift`` — shifts data bits (LSB first) and the stop bit out;
* ``rx_wait`` / ``rx_shift`` — hunt for a start bit, sample 8 data bits,
  check the stop bit, and push the byte into the RX FIFO.

The testbench device feeds bytes into the TX FIFO and collects them from
the RX FIFO; the loopback test asserts bytes survive the serialization
round trip, bit-exactly, at any divisor.
"""

from __future__ import annotations

from typing import List, Optional

from ..harness.env import Device, Environment, SimHandle
from ..koika.ast import C, If, Let, V, enum_const
from ..koika.design import Design
from ..koika.dsl import guard, mux, seq, when
from ..koika.types import EnumType
from .stdlib import StreamFifo

TX_STATE = EnumType("tx_state", ["Idle", "Data", "Stop"])
RX_STATE = EnumType("rx_state", ["Hunt", "Data", "Stop"])


def build_uart(divisor: int = 4) -> Design:
    """Build the loopback UART; ``divisor`` cycles per bit (>= 2)."""
    if divisor < 2:
        raise ValueError("divisor must be >= 2 (need an RX sample point)")
    design = Design("uart")

    # Baud generator: tick pulses one cycle in every `divisor`.
    counter_width = max(2, (divisor - 1).bit_length() + 1)
    baud_count = design.reg("baud_count", counter_width, 0)
    tick = design.reg("tick", 1, 0)
    design.rule("baud", seq(
        If(baud_count.rd0() == C(divisor - 1, counter_width),
           seq(baud_count.wr0(C(0, counter_width)), tick.wr0(C(1, 1))),
           seq(baud_count.wr0(baud_count.rd0() + C(1, counter_width)),
               tick.wr0(C(0, 1)))),
    ))

    # The serial line, idle-high, written by TX and sampled by RX.
    line = design.reg("line", 1, 1)

    # Depth-1 stream FIFOs at both ends: same handshake as the old Fifo1
    # (enq aborts when full, deq when empty), but with the stream
    # observability registers, so a StreamObserver sees every byte cross
    # the MMIO/testbench boundary.
    tx_fifo = StreamFifo(design, "tx_fifo", 8, depth=1)
    rx_fifo = StreamFifo(design, "rx_fifo", 8, depth=1)

    tx_state = design.reg("tx_state", TX_STATE, TX_STATE.Idle)
    tx_shift = design.reg("tx_shift", 8, 0)
    tx_bits = design.reg("tx_bits", 4, 0)

    design.rule("tx_start", seq(
        guard(tick.rd1() == C(1, 1)),
        guard(tx_state.rd0() == enum_const(TX_STATE, "Idle")),
        Let("byte", tx_fifo.deq(), seq(   # aborts when nothing to send
            tx_shift.wr0(V("byte")),
            tx_bits.wr0(C(0, 4)),
            line.wr0(C(0, 1)),            # start bit
            tx_state.wr0(enum_const(TX_STATE, "Data")),
        )),
    ))

    design.rule("tx_shift_rule", seq(
        guard(tick.rd1() == C(1, 1)),
        guard(tx_state.rd0() == enum_const(TX_STATE, "Data")),
        line.wr0(tx_shift.rd0()[0]),      # LSB first
        tx_shift.wr0(tx_shift.rd0() >> 1),
        If(tx_bits.rd0() == C(7, 4),
           tx_state.wr0(enum_const(TX_STATE, "Stop")),
           tx_bits.wr0(tx_bits.rd0() + C(1, 4))),
    ))

    design.rule("tx_stop", seq(
        guard(tick.rd1() == C(1, 1)),
        guard(tx_state.rd0() == enum_const(TX_STATE, "Stop")),
        line.wr0(C(1, 1)),                # stop bit (line returns idle)
        tx_state.wr0(enum_const(TX_STATE, "Idle")),
    ))

    rx_state = design.reg("rx_state", RX_STATE, RX_STATE.Hunt)
    rx_shift = design.reg("rx_shift", 8, 0)
    rx_bits = design.reg("rx_bits", 4, 0)
    rx_errors = design.reg("rx_errors", 8, 0)

    # RX samples the line on the same baud tick (zero clock skew in the
    # loopback; it reads the line at port 0, i.e. the value driven on the
    # *previous* tick-cycle commit, exactly one bit-time behind TX).
    design.rule("rx_wait", seq(
        guard(tick.rd1() == C(1, 1)),
        guard(rx_state.rd0() == enum_const(RX_STATE, "Hunt")),
        guard(line.rd0() == C(0, 1)),     # start bit seen
        rx_bits.wr0(C(0, 4)),
        rx_state.wr0(enum_const(RX_STATE, "Data")),
    ))

    design.rule("rx_shift_rule", seq(
        guard(tick.rd1() == C(1, 1)),
        guard(rx_state.rd0() == enum_const(RX_STATE, "Data")),
        rx_shift.wr0(line.rd0().concat(rx_shift.rd0()[1:8])),
        If(rx_bits.rd0() == C(7, 4),
           rx_state.wr0(enum_const(RX_STATE, "Stop")),
           rx_bits.wr0(rx_bits.rd0() + C(1, 4))),
    ))

    design.rule("rx_stop", seq(
        guard(tick.rd1() == C(1, 1)),
        guard(rx_state.rd0() == enum_const(RX_STATE, "Stop")),
        when(line.rd0() == C(0, 1),       # framing error: no stop bit
             rx_errors.wr0(rx_errors.rd0() + C(1, 8))),
        when(line.rd0() == C(1, 1),
             rx_fifo.enq(rx_shift.rd0())),
        rx_state.wr0(enum_const(RX_STATE, "Hunt")),
    ))

    # Schedule: the baud divider runs first so `tick` behaves as a wire
    # (wr0 by baud, rd1 by everyone else in the same cycle).  RX rules run
    # before TX rules: RX samples `line` at port 0 (the bit committed on
    # the previous tick), so TX's port-0 write of the *next* bit must come
    # after.
    design.schedule("baud", "rx_wait", "rx_shift_rule", "rx_stop",
                    "tx_start", "tx_shift_rule", "tx_stop")
    return design.finalize()


def poke_stream_push(sim: SimHandle, stream: str, value: int) -> None:
    """Inject one beat into a depth-1 :class:`StreamFifo` from a device,
    keeping the observability registers consistent (a raw poke bypasses
    ``enq``, so the device must mirror its accounting)."""
    sim.poke(f"{stream}_q0", value)
    sim.poke(f"{stream}_count", 1)
    sim.poke(f"{stream}_in", value)
    sim.poke(f"{stream}_pushed", (sim.peek(f"{stream}_pushed") + 1) & 0xFFFF)


def poke_stream_pop(sim: SimHandle, stream: str) -> int:
    """Drain one beat from a depth-1 :class:`StreamFifo` from a device,
    mirroring ``deq``'s accounting."""
    value = sim.peek(f"{stream}_q0")
    sim.poke(f"{stream}_count", 0)
    sim.poke(f"{stream}_out", value)
    sim.poke(f"{stream}_popped", (sim.peek(f"{stream}_popped") + 1) & 0xFFFF)
    return value


#: Registers a device must declare to drive a depth-1 stream's producer
#: (push) or consumer (pop) side from the testbench.
STREAM_PUSH_POKES = ("{s}_q0", "{s}_count", "{s}_in", "{s}_pushed")
STREAM_POP_POKES = ("{s}_count", "{s}_out", "{s}_popped")


def _stream_pokes(stream: str, templates) -> List[str]:
    return [t.format(s=stream) for t in templates]


class UartDriver(Device):
    """Feeds bytes into the TX FIFO and drains the RX FIFO."""

    def __init__(self, payload: List[int]):
        self.payload = [b & 0xFF for b in payload]
        self.pokes = set(_stream_pokes("tx_fifo", STREAM_PUSH_POKES)
                         + _stream_pokes("rx_fifo", STREAM_POP_POKES))
        self.reset()

    def reset(self) -> None:
        self.to_send = list(self.payload)
        self.received: List[int] = []

    def after_cycle(self, sim: SimHandle) -> None:
        if self.to_send and not sim.peek("tx_fifo_count"):
            poke_stream_push(sim, "tx_fifo", self.to_send.pop(0))
        if sim.peek("rx_fifo_count"):
            self.received.append(poke_stream_pop(sim, "rx_fifo"))

    @property
    def done(self) -> bool:
        return not self.to_send and len(self.received) == len(self.payload)


def make_uart_env(payload: List[int]) -> Environment:
    env = Environment()
    env.add_device(UartDriver(payload))
    return env
