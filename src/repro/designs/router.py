"""The ``router`` bundled design: a round-robin stream router/arbiter.

Two independent sources feed two ingress FIFOs; a round-robin *arbiter*
merges them into one shared trunk FIFO, and a round-robin *distributor*
spreads the trunk across two egress FIFOs, each drained by a sink::

    src0 -> in0_q \\                    / d0_q -> sink0
               [arb] -> mid_q -> [dist]
    src1 -> in1_q /                    \\ d1_q -> sink1

Both schedulers skip an empty (arbiter) or full (distributor) port
rather than stalling on it, and only advance their grant register when a
beat actually moves — an aborted rule rolls the grant back, so fairness
is preserved under backpressure.  The merge/route edges are recorded in
``design.stream_edges`` so the stream oracle can check beat conservation
across the many-to-one and one-to-many hops.
"""

from __future__ import annotations

from ..koika.ast import C, If
from ..koika.design import Design
from ..koika.dsl import seq
from .stdlib import StreamFifo, StreamSink, StreamSource

WIDTH = 16


def build_router(depth: int = 2) -> Design:
    """Build the 2x2 round-robin stream router (16-bit payloads)."""
    design = Design("router")
    in0_q = StreamFifo(design, "in0_q", WIDTH, depth=depth)
    in1_q = StreamFifo(design, "in1_q", WIDTH, depth=depth)
    mid_q = StreamFifo(design, "mid_q", WIDTH, depth=depth)
    d0_q = StreamFifo(design, "d0_q", WIDTH, depth=depth)
    d1_q = StreamFifo(design, "d1_q", WIDTH, depth=depth)

    # Distinguishable traffic: a counter on port 0, an LFSR on port 1.
    src0 = StreamSource(design, "src0", in0_q, mode="counter")
    src1 = StreamSource(design, "src1", in1_q, mode="lfsr", every=2)

    # Arbiter: prefer the granted ingress, skip it when empty, flip the
    # grant away from whoever was served.  Both-empty aborts (no beat).
    grant = design.reg("arb_grant", 1, 0)

    def serve(src: StreamFifo, next_grant: int):
        return seq(mid_q.enq(src.deq()), grant.wr0(C(next_grant, 1)))

    design.rule("arb", If(
        grant.rd0() == C(0, 1),
        If(in0_q.can_deq(), serve(in0_q, 1), serve(in1_q, 0)),
        If(in1_q.can_deq(), serve(in1_q, 0), serve(in0_q, 1))))
    design.stream_edges.append({
        "kind": "merge", "ins": ["in0_q", "in1_q"], "outs": ["mid_q"],
        "rule": "arb"})

    # Distributor: prefer the granted egress, skip it when full.
    dgrant = design.reg("dist_grant", 1, 0)

    def route(dst: StreamFifo, next_grant: int):
        return seq(dst.enq(mid_q.deq()), dgrant.wr0(C(next_grant, 1)))

    design.rule("dist", If(
        dgrant.rd0() == C(0, 1),
        If(d0_q.can_enq(), route(d0_q, 1), route(d1_q, 0)),
        If(d1_q.can_enq(), route(d1_q, 0), route(d0_q, 1))))
    design.stream_edges.append({
        "kind": "route", "ins": ["mid_q"], "outs": ["d0_q", "d1_q"],
        "rule": "dist"})

    sink0 = StreamSink(design, "snk0", d0_q)
    sink1 = StreamSink(design, "snk1", d1_q, every=2)

    design.schedule(*sink0.rule_names[:1], *sink1.rule_names[:1],
                    "dist", "arb",
                    *src0.rule_names, *src1.rule_names,
                    *sink1.rule_names[1:])
    return design.finalize()
