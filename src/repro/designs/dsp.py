"""The ``dsp`` bundled design: a multi-stage streaming DSP pipeline.

A tiliqua-style audio-ish datapath built entirely from the stream
stdlib::

    lfsr source -> in_q -> [FIR filter] -> fir_q -> [Q2.14 gain] -> out_q -> sink

The FIR stage reuses :mod:`repro.designs.fir`'s multiply-accumulate shape
(delay-line registers shifted each beat) behind a handshaked stream
interface, and the gain stage reuses :mod:`repro.designs.fft`'s signed
Q2.14 fixed-point multiply idiom.  Both stages move at most one beat per
cycle and are fully backpressured: a full downstream FIFO aborts the
stage rule, the beat stays upstream, and the FIR delay line rolls back
with it — so the filter never sees a sample twice.

Unlike ``fir``/``fft`` (extfun-driven, need a testbench), the pipeline is
self-driving: the LFSR source and the draining sink live in hardware, so
every backend (interpreter, O0-O5, batch lanes, shards, RTL) runs it
without an environment.
"""

from __future__ import annotations

from typing import List, Sequence

from ..koika.ast import Action, C, Let, V
from ..koika.design import Design
from ..koika.dsl import seq
from ..koika.types import to_signed, truncate
from .fft import FRAC_BITS, WIDTH, _smul_ref
from .stdlib import StreamFifo, StreamSink, StreamSource, lfsr_reference, map_stage

#: FIR kernel for the stream pipeline (small and symmetric, like ``fir``).
DSP_TAPS: Sequence[int] = (1, 2, 3, 2, 1)

#: Q2.14 gain applied by the scale stage (0.5).
DSP_GAIN = 0x2000

_PROD_WIDTH = 2 * WIDTH


def _scale(x: Action) -> Action:
    """Signed Q2.14 multiply by :data:`DSP_GAIN` (the ``fft`` idiom)."""
    wide_x = x.sext(_PROD_WIDTH)
    wide_g = C(truncate(to_signed(DSP_GAIN, WIDTH), _PROD_WIDTH), _PROD_WIDTH)
    return (wide_x * wide_g).sra(FRAC_BITS)[0:WIDTH]


def build_dsp(depth: int = 2, lfsr_seed: int = 1) -> Design:
    """Build the streaming DSP pipeline (16-bit payloads throughout)."""
    design = Design("dsp")
    in_q = StreamFifo(design, "in_q", WIDTH, depth=depth)
    fir_q = StreamFifo(design, "fir_q", WIDTH, depth=depth)
    out_q = StreamFifo(design, "out_q", WIDTH, depth=depth)

    source = StreamSource(design, "src", in_q, mode="lfsr", seed=lfsr_seed)

    # FIR stage: dequeue one sample, emit the multiply-accumulate over the
    # delay line, then shift the sample in.  One rule == one atomic beat.
    delay = [design.reg(f"fir_x{k}", WIDTH, 0)
             for k in range(len(DSP_TAPS) - 1)]

    def accumulate(sample: Action) -> Action:
        acc: Action = sample * C(DSP_TAPS[0], WIDTH)
        for k, tap in enumerate(DSP_TAPS[1:]):
            acc = acc + (delay[k].rd0() * C(tap, WIDTH))
        return acc

    shifts: List[Action] = []
    for k in range(len(delay) - 1, 0, -1):
        shifts.append(delay[k].wr0(delay[k - 1].rd0()))
    design.rule("fir_stage", Let(
        "_dsp_sample", in_q.deq(),
        seq(
            fir_q.enq(accumulate(V("_dsp_sample"))),
            *(shifts + [delay[0].wr0(V("_dsp_sample"))]),
        )))
    design.stream_edges.append({
        "kind": "map", "ins": ["in_q"], "outs": ["fir_q"],
        "rule": "fir_stage"})

    map_stage(design, "gain_stage", fir_q, out_q, _scale)
    sink = StreamSink(design, "snk", out_q)

    # Consumers before producers: the forwarding FIFOs accept a new beat
    # in the cycle their head is dequeued only in this order.
    design.schedule(*sink.rule_names, "gain_stage", "fir_stage",
                    *source.rule_names)
    return design.finalize()


def reference_dsp(n_samples: int, lfsr_seed: int = 1) -> List[int]:
    """Software golden model: the first ``n_samples`` sink payloads."""
    samples = [lfsr_reference(WIDTH, lfsr_seed, k) for k in range(n_samples)]
    mask = (1 << WIDTH) - 1
    history = [0] * len(DSP_TAPS)
    out = []
    for sample in samples:
        history = [sample & mask] + history[:-1]
        acc = 0
        for tap, value in zip(DSP_TAPS, history):
            acc = (acc + tap * value) & mask
        out.append(_smul_ref(acc, DSP_GAIN))
    return out
