"""Golden-model lockstep checking for the RV32 cores.

Classic retirement-level co-verification: run the pipelined core and the
one-instruction-at-a-time golden model side by side, stepping the golden
model once per *architectural* retirement (a non-poisoned writeback
commit) and comparing the full architectural register file after each
one.  A divergence pinpoints the first retired instruction whose effect
differs — far more precise than comparing only the final TOHOST value.
"""

from __future__ import annotations

from typing import List, Optional

from ...errors import SimulationError
from ...riscv.disasm import disassemble
from ...riscv.golden import GoldenModel
from .common import E2W


class LockstepMismatch(AssertionError):
    """The pipeline and the golden model disagree at a retirement."""


class GoldenLockstep:
    """Drives a core simulation in lockstep with a :class:`GoldenModel`.

    ``sim`` must expose the core's registers under ``prefix`` and report
    committed rules from ``run_cycle`` (all backends do).
    """

    def __init__(self, sim, golden: GoldenModel, prefix: str = "",
                 nregs: int = 32):
        self.sim = sim
        self.golden = golden
        self.prefix = prefix
        self.nregs = nregs
        self.retired = 0
        self.log: List[str] = []

    def _pending_retirement(self) -> Optional[dict]:
        """The e2w entry that this cycle's writeback would retire."""
        p = self.prefix
        if not self.sim.peek(f"{p}e2w_valid"):
            return None
        entry = E2W.unpack(self.sim.peek(f"{p}e2w_data"))
        # A pending load additionally needs its memory response; both the
        # pipeline and this check see the same fromDMem_valid register.
        if entry["is_load"] and not self.sim.peek(f"{p}fromDMem_valid"):
            return None
        return entry

    def step(self) -> bool:
        """One cycle; returns True if an instruction retired.

        Raises :class:`LockstepMismatch` on the first register-file
        divergence after a retirement.
        """
        pending = self._pending_retirement()
        committed = self.sim.run_cycle()
        writeback = f"{self.prefix}writeback" in committed
        if not (writeback and pending is not None):
            return False
        if pending["poisoned"]:
            return False  # wrong-path instruction: architecturally invisible
        instruction_pc = self.golden.pc
        word = self.golden.memory.get(instruction_pc & ~3, 0)
        self.golden.step()
        self.retired += 1
        self.log.append(disassemble(word, pc=instruction_pc))
        self._compare(instruction_pc, word)
        return True

    def _compare(self, pc: int, word: int) -> None:
        p = self.prefix
        for index in range(1, self.nregs):
            pipeline_value = self.sim.peek(f"{p}rf_{index}")
            golden_value = self.golden.regs[index]
            if pipeline_value != golden_value:
                raise LockstepMismatch(
                    f"after retiring #{self.retired} "
                    f"[{pc:#x}: {disassemble(word, pc=pc)}]: "
                    f"x{index} = {pipeline_value:#x} in the pipeline but "
                    f"{golden_value:#x} in the golden model"
                )

    def run(self, max_cycles: int = 1_000_000,
            until_halted: bool = True) -> int:
        """Run until the golden model halts (or ``max_cycles``); returns
        the number of retired instructions."""
        for _ in range(max_cycles):
            self.step()
            if until_halted and self.golden.halted:
                return self.retired
        if until_halted:
            raise SimulationError(
                f"program did not retire to completion in {max_cycles} cycles"
            )
        return self.retired
