"""Direct-mapped caches for the RV32 core, as Kôika rules.

With a multi-cycle main memory (``RV32MemoryDevice(latency=N)``) the
idealized single-cycle fetch path becomes the bottleneck; these caches
put the paper's design methodology to work on a classic microarchitecture
problem, entirely inside the rule language:

* **I-cache** — direct-mapped, one word per line; a hit answers the
  core's instruction request in one cycle, a miss forwards it to the
  memory port and fills on the response.
* **D-cache** — write-through, no-allocate-on-store; loads are cached,
  MMIO addresses (bit 30 set) always bypass.

Port discipline worth reading (it is the subtle part):

* the cache *consumes* the core's request with ``rd1``/``wr1`` — it runs
  after the core stage that issued it in the same cycle;
* the cache *delivers* responses with ``wr1`` on the ``from*`` registers
  the core reads at ``rd0``/``wr0`` — so the consuming stage can retire
  the previous response in the same cycle the cache delivers the next
  one (``wr1`` commits after, and wins over, the stage's ``wr0`` clear).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ...harness.env import Device, Environment, SimHandle
from ...koika.ast import C, If, Let, V, enum_const, struct_init
from ...koika.design import Design
from ...koika.dsl import RegArray, guard, mux, seq, when
from ...koika.types import EnumType
from ...riscv.assembler import Program
from ...riscv.golden import OUTPUT_ADDR, TOHOST_ADDR, load_from, store_to
from .common import DMEM_REQ
from .core import add_rv32_core

CACHE_STATE = EnumType("cache_state", ["Ready", "WaitMem"])


def _split_address(addr, index_bits: int):
    """addr -> (line index, tag) for word-aligned direct mapping."""
    index = addr[2:2 + index_bits]
    tag = addr[2 + index_bits:32]
    return index, tag


def add_icache(design: Design, lines: int = 8, core_prefix: str = "",
               prefix: str = "ic_") -> None:
    index_bits = (lines - 1).bit_length()
    tag_width = 32 - 2 - index_bits
    p, cp = prefix, core_prefix

    tags = RegArray(design, f"{p}tag", lines, tag_width)
    valids = RegArray(design, f"{p}valid", lines, 1)
    data = RegArray(design, f"{p}data", lines, 32)
    state = design.reg(f"{p}state", CACHE_STATE, CACHE_STATE.Ready)
    pending = design.reg(f"{p}pending", 32, 0)
    mreq_addr = design.reg(f"{p}mreq_addr", 32, 0)
    mreq_valid = design.reg(f"{p}mreq_valid", 1, 0)
    mrsp_data = design.reg(f"{p}mrsp_data", 32, 0)
    mrsp_valid = design.reg(f"{p}mrsp_valid", 1, 0)

    to_valid = design.registers[f"{cp}toIMem_valid"]
    to_addr = design.registers[f"{cp}toIMem_addr"]
    from_data = design.registers[f"{cp}fromIMem_data"]
    from_valid = design.registers[f"{cp}fromIMem_valid"]

    addr = V("addr")
    index, tag = _split_address(addr, index_bits)
    serve_ready = seq(
        guard(to_valid.rd1() == C(1, 1)),
        Let("addr", to_addr.rd1(), seq(
            to_valid.wr1(C(0, 1)),                    # consume the request
            If((valids.read(0, index) == C(1, 1))
               & (tags.read(0, index) == tag),
               seq(                                   # hit: answer now
                   from_data.wr1(data.read(0, index)),
                   from_valid.wr1(C(1, 1)),
               ),
               seq(                                   # miss: go to memory
                   mreq_addr.wr0(V("addr")),
                   mreq_valid.wr0(C(1, 1)),
                   pending.wr0(V("addr")),
                   state.wr0(enum_const(CACHE_STATE, "WaitMem")),
               )),
        )),
    )
    fill_index, fill_tag = _split_address(V("faddr"), index_bits)
    serve_wait = seq(
        guard(mrsp_valid.rd0() == C(1, 1)),
        mrsp_valid.wr0(C(0, 1)),
        Let("faddr", pending.rd0(), seq(
            tags.write(0, fill_index, fill_tag),
            valids.write(0, fill_index, C(1, 1)),
            data.write(0, fill_index, mrsp_data.rd0()),
            from_data.wr1(mrsp_data.rd0()),
            from_valid.wr1(C(1, 1)),
            state.wr0(enum_const(CACHE_STATE, "Ready")),
        )),
    )
    design.rule(f"{p}serve", If(
        state.rd0() == enum_const(CACHE_STATE, "Ready"),
        serve_ready, serve_wait))
    design.schedule(f"{p}serve")


def add_dcache(design: Design, lines: int = 8, core_prefix: str = "",
               prefix: str = "dc_") -> None:
    index_bits = (lines - 1).bit_length()
    tag_width = 32 - 2 - index_bits
    p, cp = prefix, core_prefix

    tags = RegArray(design, f"{p}tag", lines, tag_width)
    valids = RegArray(design, f"{p}valid", lines, 1)
    data = RegArray(design, f"{p}data", lines, 32)
    state = design.reg(f"{p}state", CACHE_STATE, CACHE_STATE.Ready)
    mreq_data = design.reg(f"{p}mreq_data", DMEM_REQ, 0)
    mreq_valid = design.reg(f"{p}mreq_valid", 1, 0)
    mrsp_data = design.reg(f"{p}mrsp_data", 32, 0)
    mrsp_valid = design.reg(f"{p}mrsp_valid", 1, 0)
    pending = design.reg(f"{p}pending", 32, 0)

    to_valid = design.registers[f"{cp}toDMem_valid"]
    to_data = design.registers[f"{cp}toDMem_data"]
    from_data = design.registers[f"{cp}fromDMem_data"]
    from_valid = design.registers[f"{cp}fromDMem_valid"]

    req = V("req")
    addr = req.field("addr")
    index, tag = _split_address(addr, index_bits)
    is_mmio = addr[30] == C(1, 1)
    is_word = req.field("funct3") == C(0b010, 3)
    hit = (valids.read(0, index) == C(1, 1)) & \
        (tags.read(0, index) == tag)

    forward_to_memory = seq(
        mreq_data.wr0(req),
        mreq_valid.wr0(C(1, 1)),
    )
    handle_store = seq(
        # Write-through: keep a hit line coherent (word stores update it;
        # sub-word stores just invalidate — simplest correct policy).
        when(hit & ~is_mmio,
             If(is_word,
                data.write(0, index, req.field("data")),
                valids.write(0, index, C(0, 1)))),
        forward_to_memory,
        to_valid.wr1(C(0, 1)),
    )
    handle_load = If(
        hit & ~is_mmio & is_word,
        seq(                                        # cached word load
            from_data.wr1(data.read(0, index)),
            from_valid.wr1(C(1, 1)),
            to_valid.wr1(C(0, 1)),
        ),
        seq(                                        # miss or uncacheable
            forward_to_memory,
            pending.wr0(addr),
            state.wr0(enum_const(CACHE_STATE, "WaitMem")),
            to_valid.wr1(C(0, 1)),
        ))
    serve_ready = seq(
        guard(to_valid.rd1() == C(1, 1)),
        guard(mreq_valid.rd0() == C(0, 1)),         # memory port free
        Let("req", to_data.rd1(),
            If(req.field("is_store") == C(1, 1), handle_store,
               handle_load)),
    )
    fill_index, fill_tag = _split_address(V("faddr"), index_bits)
    serve_wait = seq(
        guard(mrsp_valid.rd0() == C(1, 1)),
        mrsp_valid.wr0(C(0, 1)),
        Let("faddr", pending.rd0(), seq(
            # Only well-aligned cacheable words are allocated.
            when((V("faddr")[30] == C(0, 1)),
                 seq(tags.write(0, fill_index, fill_tag),
                     valids.write(0, fill_index, C(1, 1)),
                     data.write(0, fill_index, mrsp_data.rd0()))),
            from_data.wr1(mrsp_data.rd0()),
            from_valid.wr1(C(1, 1)),
            state.wr0(enum_const(CACHE_STATE, "Ready")),
        )),
    )
    design.rule(f"{p}serve", If(
        state.rd0() == enum_const(CACHE_STATE, "Ready"),
        serve_ready, serve_wait))
    design.schedule(f"{p}serve")


def build_rv32i_cached(icache_lines: int = 8,
                       dcache_lines: int = 8) -> Design:
    """rv32i plus an I-cache and a write-through D-cache."""
    design = Design("rv32i_cached")
    add_rv32_core(design, nregs=32, predictor="pc4")
    add_icache(design, lines=icache_lines)
    add_dcache(design, lines=dcache_lines)
    return design.finalize()


class CacheMemoryDevice(Device):
    """Backing memory behind the caches, with configurable latency.

    Services the caches' memory-side ports (``ic_mreq``/``dc_mreq``);
    TOHOST/OUTPUT MMIO lives here, reached through the D-cache's bypass.
    """

    def __init__(self, program: Program, latency: int = 1):
        if latency < 1:
            raise ValueError("memory latency must be >= 1 cycle")
        self.program = program
        self.latency = latency
        self.pokes = {"ic_mrsp_data", "ic_mrsp_valid", "ic_mreq_valid",
                      "dc_mrsp_data", "dc_mrsp_valid", "dc_mreq_valid"}
        self.reset()

    def reset(self) -> None:
        self.memory = self.program.memory_image()
        self.tohost: Optional[int] = None
        self.outputs: List[int] = []
        self.fills = 0
        self._in_flight: List[List] = []

    @property
    def halted(self) -> bool:
        return self.tohost is not None

    def _respond(self, sim: SimHandle, port: str, value: int) -> None:
        if self.latency == 1:
            sim.poke(f"{port}_data", value)
            sim.poke(f"{port}_valid", 1)
        else:
            self._in_flight.append([self.latency - 1, port, value])

    def after_cycle(self, sim: SimHandle) -> None:
        still_waiting = []
        for entry in self._in_flight:
            entry[0] -= 1
            if entry[0] <= 0:
                sim.poke(f"{entry[1]}_data", entry[2])
                sim.poke(f"{entry[1]}_valid", 1)
            else:
                still_waiting.append(entry)
        self._in_flight = still_waiting

        if sim.peek("ic_mreq_valid"):
            addr = sim.peek("ic_mreq_addr")
            self._respond(sim, "ic_mrsp", self.memory.get(addr & ~3, 0))
            sim.poke("ic_mreq_valid", 0)
            self.fills += 1
        if sim.peek("dc_mreq_valid"):
            request = DMEM_REQ.unpack(sim.peek("dc_mreq_data"))
            addr = request["addr"]
            if request["is_store"]:
                value = request["data"]
                if addr == TOHOST_ADDR:
                    if self.tohost is None:
                        self.tohost = value
                elif addr == OUTPUT_ADDR:
                    self.outputs.append(value)
                else:
                    store_to(self.memory, addr, value, request["funct3"])
            else:
                self._respond(sim, "dc_mrsp",
                              load_from(self.memory, addr,
                                        request["funct3"]))
            sim.poke("dc_mreq_valid", 0)


def make_cached_env(program: Program, latency: int = 1) -> Environment:
    env = Environment()
    env.add_device(CacheMemoryDevice(program, latency=latency))
    return env
