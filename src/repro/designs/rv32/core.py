"""The paper's embedded RISC-V cores: 4-stage pipelined RV32I / RV32E.

Pipeline structure (one rule per stage, classic Kôika/Bluespec style):

    writeback |> execute |> decode |> fetch

* **fetch** — predict the next pc (``pc + 4`` baseline, or BTB + BHT for
  the ``-bp`` variant), enqueue into ``f2d``, issue the instruction-memory
  request.
* **decode** — decode the fetched word, stall on scoreboard hazards (the
  paper's ``if (score1 != 0 || score2 != 0) FAIL();``), read the register
  file (port 1: bypass from same-cycle writeback), claim the destination
  in the scoreboard, enqueue into ``d2e``.
* **execute** — drop mispredicted-epoch instructions (poisoned), run the
  ALU / branch unit, redirect the pc on mispredicts (flipping the epoch),
  issue data-memory requests, enqueue into ``e2w``.
* **writeback** — collect load responses, write the register file, release
  the scoreboard entry.

The FIFO port discipline (dequeue at port 0 before the upstream stage
enqueues at port 1) means every stage advances every cycle when nothing
stalls.  Static analysis proves *every* register of this design safe, so
the O5 Cuttlesim model carries no read-write-set tracking at all.

``scoreboard_x0_bug=True`` reproduces case study 3: the scoreboard tracks
``x0`` like a real register, so each NOP (``addi x0, x0, 0``) creates a
phantom dependency on the previous one and the pipeline runs at ~2 cycles
per instruction (203 cycles for 100 NOPs).
"""

from __future__ import annotations

from typing import Optional

from ...koika.ast import Action, C, If, Let, Seq, V, struct_init, unit
from ...koika.design import Design
from ...koika.dsl import RegArray, guard, mux, seq, when
from ...koika.types import bits
from ...riscv import encoding as enc
from .common import D2E, DINST, DMEM_REQ, E2W, F2D, add_alu, \
    add_branch_unit, add_decoder, add_muldiv_unit

#: Branch-predictor geometry for the ``-bp`` variant.
BTB_BITS = 3     # 8-entry direct-mapped branch target buffer
BHT_BITS = 4     # 16-entry table of 2-bit saturating counters


def add_rv32_core(design: Design, prefix: str = "", nregs: int = 32,
                  predictor: str = "pc4",
                  scoreboard_x0_bug: bool = False,
                  muldiv: bool = False,
                  bypass: bool = False) -> None:
    """Add one pipelined core (registers, functions, four rules) to
    ``design``, namespaced by ``prefix``.  Appends its rules to the
    scheduler in ``writeback |> execute |> decode |> fetch`` order."""
    if nregs not in (16, 32):
        raise ValueError("nregs must be 16 (RV32E) or 32 (RV32I)")
    if predictor not in ("pc4", "btb"):
        raise ValueError(f"unknown predictor {predictor!r}")
    p = prefix

    pc = design.reg(f"{p}pc", 32, init=0)
    epoch = design.reg(f"{p}epoch", 1, init=0)
    rf = RegArray(design, f"{p}rf", nregs, 32)
    sb = RegArray(design, f"{p}sb", nregs, 2)

    f2d_data = design.reg(f"{p}f2d_data", F2D, 0)
    f2d_valid = design.reg(f"{p}f2d_valid", 1, 0)
    d2e_data = design.reg(f"{p}d2e_data", D2E, 0)
    d2e_valid = design.reg(f"{p}d2e_valid", 1, 0)
    e2w_data = design.reg(f"{p}e2w_data", E2W, 0)
    e2w_valid = design.reg(f"{p}e2w_valid", 1, 0)

    to_imem_addr = design.reg(f"{p}toIMem_addr", 32, 0)
    to_imem_valid = design.reg(f"{p}toIMem_valid", 1, 0)
    from_imem_data = design.reg(f"{p}fromIMem_data", 32, 0)
    from_imem_valid = design.reg(f"{p}fromIMem_valid", 1, 0)
    to_dmem_data = design.reg(f"{p}toDMem_data", DMEM_REQ, 0)
    to_dmem_valid = design.reg(f"{p}toDMem_valid", 1, 0)
    from_dmem_data = design.reg(f"{p}fromDMem_data", 32, 0)
    from_dmem_valid = design.reg(f"{p}fromDMem_valid", 1, 0)

    bypass_regs = None
    if bypass:
        # EX -> decode forwarding wire (the "missing bypassing path" case
        # study 4 identifies).  Execute drives it at port 0 when it
        # produces a non-load result; decode reads it at port 1 the same
        # cycle; an always-firing late rule clears the valid bit at port 1
        # so the wire never leaks into the next cycle.
        bypass_regs = {
            "valid": design.reg(f"{p}bypass_valid", 1, 0),
            "rd": design.reg(f"{p}bypass_rd", 5, 0),
            "val": design.reg(f"{p}bypass_val", 32, 0),
        }

    decode_fn = add_decoder(design, p)
    alu_fn = add_alu(design, p)
    branch_fn = add_branch_unit(design, p)
    muldiv_fn = add_muldiv_unit(design, p) if muldiv else None

    btb = None
    if predictor == "btb":
        btb = {
            "valid": RegArray(design, f"{p}btb_valid", 1 << BTB_BITS, 1),
            "tag": RegArray(design, f"{p}btb_tag", 1 << BTB_BITS,
                            32 - 2 - BTB_BITS),
            "target": RegArray(design, f"{p}btb_target", 1 << BTB_BITS, 32),
            "uncond": RegArray(design, f"{p}btb_uncond", 1 << BTB_BITS, 1),
            "bht": RegArray(design, f"{p}bht", 1 << BHT_BITS, 2, init=1),
        }

    def reg_index(field: Action) -> Action:
        """Map a 5-bit register specifier to a register-file index."""
        return field if nregs == 32 else field[0:4]

    # ------------------------------------------------------------------
    # writeback
    # ------------------------------------------------------------------
    w = V("w")
    rd_idx = reg_index(w.field("rd"))
    rf_write = rf.write(0, rd_idx, V("value"))
    if not scoreboard_x0_bug:
        rf_write = when(w.field("rd") != C(0, 5), rf_write)
    writeback_body = seq(
        guard(e2w_valid.rd0() == C(1, 1)),
        Let("w", e2w_data.rd0(), seq(
            # A live load must have its memory response before retiring.
            when((w.field("is_load") == C(1, 1)),
                 guard(from_dmem_valid.rd0() == C(1, 1))),
            e2w_valid.wr0(C(0, 1)),
            Let("value", mux(w.field("is_load") == C(1, 1),
                             from_dmem_data.rd0(), w.field("wdata")), seq(
                when(w.field("is_load") == C(1, 1),
                     from_dmem_valid.wr0(C(0, 1))),
                when((w.field("wen") == C(1, 1))
                     & (w.field("poisoned") == C(0, 1)),
                     rf_write),
                when(w.field("wen") == C(1, 1),
                     sb.write(0, rd_idx,
                              sb.read(0, rd_idx) - C(1, 2))),
            )),
        )),
    )
    design.rule(f"{p}writeback", writeback_body)

    # ------------------------------------------------------------------
    # execute
    # ------------------------------------------------------------------
    e = V("e")
    di = V("di")
    rv1, rv2 = V("rv1"), V("rv2")
    opcode = di.field("opcode")
    funct3 = di.field("funct3")
    imm = di.field("imm")
    epc = e.field("pc")
    pc_plus4 = epc + C(4, 32)

    is_branch = opcode == C(enc.OP_BRANCH, 7)
    is_jal = opcode == C(enc.OP_JAL, 7)
    is_jalr = opcode == C(enc.OP_JALR, 7)
    is_load = opcode == C(enc.OP_LOAD, 7)
    is_store = opcode == C(enc.OP_STORE, 7)

    taken = branch_fn(funct3, rv1, rv2)
    next_pc = mux(
        is_branch, mux(taken == C(1, 1), epc + imm, pc_plus4),
        mux(is_jal, epc + imm,
            mux(is_jalr, (rv1 + imm) & C(0xFFFFFFFE, 32), pc_plus4)))

    alu_out = alu_fn(funct3, di.field("alt"), rv1,
                     mux(opcode == C(enc.OP_REG, 7), rv2, imm))
    if muldiv:
        # M extension: funct7[0] routes OP_REG instructions to the
        # multiply/divide unit instead of the base ALU.
        alu_out = mux(di.field("mdiv") == C(1, 1),
                      muldiv_fn(funct3, rv1, rv2), alu_out)
    wdata = mux(
        opcode == C(enc.OP_LUI, 7), imm,
        mux(opcode == C(enc.OP_AUIPC, 7), epc + imm,
            mux(is_jal | is_jalr, pc_plus4, alu_out)))

    dmem_req = struct_init(
        DMEM_REQ,
        is_store=mux(is_store, C(1, 1), C(0, 1)),
        funct3=funct3,
        addr=mux(is_store, rv1 + di.field("imm"), rv1 + imm),
        data=rv2,
    )

    predictor_update = unit()
    if predictor == "btb":
        predictor_update = _btb_update(btb, e, taken, is_branch, is_jal,
                                       is_jalr)

    mispredict_redirect = pc.wr0(V("nextpc"))
    mispredict_redirect.tag = f"{p}mispredict"  # counted by case study 4
    execute_real = Let("nextpc", next_pc, seq(
        when(V("nextpc") != e.field("ppc"), seq(
            mispredict_redirect,
            epoch.wr0(epoch.rd0() ^ C(1, 1)),
        )),
        when(is_load | is_store, seq(
            guard(to_dmem_valid.rd0() == C(0, 1)),
            to_dmem_data.wr0(dmem_req),
            to_dmem_valid.wr0(C(1, 1)),
        )),
        Seq(
            e2w_data.wr1(struct_init(
                E2W, rd=di.field("rd"), wen=di.field("wen"),
                poisoned=C(0, 1),
                is_load=mux(is_load, C(1, 1), C(0, 1)),
                wdata=wdata)),
            e2w_valid.wr1(C(1, 1)),
        ),
        (seq(
            when((di.field("wen") == C(1, 1)) & ~is_load,
                 seq(bypass_regs["valid"].wr0(C(1, 1)),
                     bypass_regs["rd"].wr0(di.field("rd")),
                     bypass_regs["val"].wr0(wdata))),
        ) if bypass else unit()),
        predictor_update,
    ))

    execute_poisoned = Seq(
        e2w_data.wr1(struct_init(
            E2W, rd=di.field("rd"), wen=di.field("wen"),
            poisoned=C(1, 1), is_load=C(0, 1), wdata=C(0, 32))),
        e2w_valid.wr1(C(1, 1)),
    )

    execute_body = seq(
        guard(d2e_valid.rd0() == C(1, 1)),
        guard(e2w_valid.rd1() == C(0, 1)),  # space after writeback's deq
        Let("e", d2e_data.rd0(), Let("di", e.field("dinst"), seq(
            d2e_valid.wr0(C(0, 1)),
            Let("rv1", e.field("rval1"), Let("rv2", e.field("rval2"),
                If(e.field("epoch") == epoch.rd0(),
                   execute_real,
                   execute_poisoned))),
        ))),
    )
    design.rule(f"{p}execute", execute_body)

    # ------------------------------------------------------------------
    # decode
    # ------------------------------------------------------------------
    f = V("f")
    d = V("d")
    rs1_idx = reg_index(d.field("rs1"))
    rs2_idx = reg_index(d.field("rs2"))
    drd_idx = reg_index(d.field("rd"))
    if scoreboard_x0_bug:
        # Case study 3: x0 is scoreboarded like any other register, so
        # NOPs (addi x0, x0, 0) serialize against each other.
        wen_adjusted = d.field("wen")
    else:
        wen_adjusted = d.field("wen") & \
            mux(d.field("rd") == C(0, 5), C(0, 1), C(1, 1))

    decode_body = seq(
        guard(f2d_valid.rd0() == C(1, 1)),
        guard(from_imem_valid.rd0() == C(1, 1)),
        Let("f", f2d_data.rd0(),
            Let("d", decode_fn(from_imem_data.rd0()),
                # Scoreboard hazard check — the paper's stall.  With the
                # bypass wire, a single in-flight producer whose result is
                # on the wire this cycle does not stall.
                Let("score1", sb.read(1, rs1_idx),
                    Let("score2", sb.read(1, rs2_idx), seq(
                        *(_bypass_guards(bypass_regs, d)
                          if bypass else
                          [guard((V("score1") == C(0, 2))
                                 & (V("score2") == C(0, 2)))]),
                        f2d_valid.wr0(C(0, 1)),
                        from_imem_valid.wr0(C(0, 1)),
                        Let("wen", wen_adjusted, seq(
                            when(V("wen") == C(1, 1),
                                 sb.write(1, drd_idx,
                                          sb.read(1, drd_idx) + C(1, 2))),
                            guard(d2e_valid.rd1() == C(0, 1)),
                            d2e_data.wr1(struct_init(
                                D2E,
                                pc=f.field("pc"), ppc=f.field("ppc"),
                                epoch=f.field("epoch"),
                                dinst=d.subst("wen", V("wen")),
                                rval1=(_bypass_mux(bypass_regs, d, "rs1",
                                                   rf.read(1, rs1_idx))
                                       if bypass
                                       else rf.read(1, rs1_idx)),
                                rval2=(_bypass_mux(bypass_regs, d, "rs2",
                                                   rf.read(1, rs2_idx))
                                       if bypass
                                       else rf.read(1, rs2_idx)))),
                            d2e_valid.wr1(C(1, 1)),
                        )),
                    ))))),
    )
    design.rule(f"{p}decode", decode_body)

    # ------------------------------------------------------------------
    # fetch
    # ------------------------------------------------------------------
    if predictor == "btb":
        predict = _btb_predict(btb, V("pc_now"))
    else:
        predict = V("pc_now") + C(4, 32)

    fetch_body = seq(
        guard(to_imem_valid.rd0() == C(0, 1)),
        guard(f2d_valid.rd1() == C(0, 1)),
        Let("pc_now", pc.rd1(), Let("pred", predict, seq(
            f2d_data.wr1(struct_init(
                F2D, pc=V("pc_now"), ppc=V("pred"), epoch=epoch.rd1())),
            f2d_valid.wr1(C(1, 1)),
            pc.wr1(V("pred")),
            to_imem_addr.wr0(V("pc_now")),
            to_imem_valid.wr0(C(1, 1)),
        ))),
    )
    design.rule(f"{p}fetch", fetch_body)

    if bypass:
        design.rule(f"{p}bypass_clear",
                    bypass_regs["valid"].wr1(C(0, 1)))
    design.schedule(f"{p}writeback", f"{p}execute", f"{p}decode", f"{p}fetch",
                    *([f"{p}bypass_clear"] if bypass else []))


def _bypass_hit(bypass_regs, d, rs_field: str):
    """This source register's value is on the forwarding wire right now."""
    return (bypass_regs["valid"].rd1() == C(1, 1)) & \
        (bypass_regs["rd"].rd1() == d.field(rs_field)) & \
        (d.field(rs_field) != C(0, 5))


def _bypass_guards(bypass_regs, d):
    """Stall unless each busy source register is forwardable."""
    return [
        guard((V("score1") == C(0, 2)) | _bypass_hit(bypass_regs, d, "rs1")),
        guard((V("score2") == C(0, 2)) | _bypass_hit(bypass_regs, d, "rs2")),
    ]


def _bypass_mux(bypass_regs, d, rs_field: str, regular):
    """Prefer the forwarded value when the register is still scoreboarded."""
    score = V("score1") if rs_field == "rs1" else V("score2")
    return mux((score != C(0, 2)) & _bypass_hit(bypass_regs, d, rs_field),
               bypass_regs["val"].rd1(), regular)


# ----------------------------------------------------------------------
# Branch predictor (BTB + BHT) for the -bp variant.
# ----------------------------------------------------------------------

def _btb_predict(btb, pc_now: Action) -> Action:
    btb_idx = pc_now[2:2 + BTB_BITS]
    bht_idx = pc_now[2:2 + BHT_BITS]
    tag = pc_now[2 + BTB_BITS:32]
    hit = (btb["valid"].read(1, btb_idx) == C(1, 1)) & \
        (btb["tag"].read(1, btb_idx) == tag)
    take = (btb["uncond"].read(1, btb_idx) == C(1, 1)) | \
        (btb["bht"].read(1, bht_idx)[1] == C(1, 1))
    return mux(hit & take, btb["target"].read(1, btb_idx),
               pc_now + C(4, 32))


def _btb_update(btb, e: Action, taken: Action, is_branch: Action,
                is_jal: Action, is_jalr: Action) -> Action:
    epc = e.field("pc")
    btb_idx = epc[2:2 + BTB_BITS]
    bht_idx = epc[2:2 + BHT_BITS]
    tag = epc[2 + BTB_BITS:32]
    counter = V("bht_ctr")
    bumped = mux(V("brtaken") == C(1, 1),
                 mux(counter == C(3, 2), C(3, 2), counter + C(1, 2)),
                 mux(counter == C(0, 2), C(0, 2), counter - C(1, 2)))
    update_bht = Let("bht_ctr", btb["bht"].read(0, bht_idx),
                     btb["bht"].write(0, bht_idx, bumped))
    record_target = seq(
        btb["valid"].write(0, btb_idx, C(1, 1)),
        btb["tag"].write(0, btb_idx, tag),
        btb["target"].write(0, btb_idx, V("nextpc")),
        btb["uncond"].write(0, btb_idx,
                            mux(is_branch, C(0, 1), C(1, 1))),
    )
    return seq(
        when(is_branch, Let("brtaken", taken, seq(
            update_bht,
            when(V("brtaken") == C(1, 1), record_target),
        ))),
        when(is_jal | is_jalr, record_target),
    )


# ----------------------------------------------------------------------
# Design builders (Table 1's rows).
# ----------------------------------------------------------------------

def build_rv32i(scoreboard_x0_bug: bool = False) -> Design:
    """``rv32i``: small RISC-V core, pc+4 predictor."""
    design = Design("rv32i" + ("_sbbug" if scoreboard_x0_bug else ""))
    add_rv32_core(design, nregs=32, predictor="pc4",
                  scoreboard_x0_bug=scoreboard_x0_bug)
    return design.finalize()


def build_rv32i_bypass() -> Design:
    """``rv32i`` plus an EX->decode forwarding path — the architectural
    follow-up case study 4 suggests ("missing bypassing paths, forcing
    the processor to insert bubbles between back-to-back data dependent
    arithmetic instructions")."""
    design = Design("rv32i_bypass")
    add_rv32_core(design, nregs=32, predictor="pc4", bypass=True)
    return design.finalize()


def build_rv32im() -> Design:
    """``rv32im``: rv32i plus the M extension (an extension beyond the
    paper's benchmarks; single-cycle idealized multiplier/divider)."""
    design = Design("rv32im")
    add_rv32_core(design, nregs=32, predictor="pc4", muldiv=True)
    return design.finalize()


def build_rv32e() -> Design:
    """``rv32e``: the 16-register embedded variant."""
    design = Design("rv32e")
    add_rv32_core(design, nregs=16, predictor="pc4")
    return design.finalize()


def build_rv32i_bp() -> Design:
    """``rv32i-bp``: rv32i with a BTB + BHT branch predictor."""
    design = Design("rv32i_bp")
    add_rv32_core(design, nregs=32, predictor="btb")
    return design.finalize()


def build_rv32i_mc() -> Design:
    """``rv32i-mc``: dual-core variant (two independent cores in one
    design, doubling the amount of hardware simulated per cycle)."""
    design = Design("rv32i_mc")
    add_rv32_core(design, prefix="c0_", nregs=32, predictor="pc4")
    add_rv32_core(design, prefix="c1_", nregs=32, predictor="pc4")
    return design.finalize()
