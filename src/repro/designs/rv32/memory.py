"""Testbench memory for the RV32 cores: an idealized single-cycle memory.

The core talks to memory through valid/data register pairs; this device
services requests *between* cycles (peek/poke), which is cycle-accurate by
construction on every backend (§4.1's "idealized single-cycle memory").
Memory-mapped conventions match the golden model: a store to ``TOHOST``
halts the program (recording the result), a store to ``OUTPUT`` appends to
an output stream.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...harness.env import Device, Environment, SimHandle
from ...riscv.assembler import Program
from ...riscv.golden import OUTPUT_ADDR, TOHOST_ADDR, load_from, store_to
from .common import DMEM_REQ


class RV32MemoryDevice(Device):
    """Instruction + data memory plus TOHOST/OUTPUT MMIO, for one core.

    ``latency=1`` is the paper's idealized single-cycle memory (a request
    issued in cycle N is answered before cycle N+1).  Larger latencies
    queue responses for ``latency - 1`` additional cycles, exercising the
    pipeline's stall paths (decode waits on ``fromIMem``, writeback on
    ``fromDMem``) without any design change.
    """

    def __init__(self, program: Program, prefix: str = "",
                 latency: int = 1):
        if latency < 1:
            raise ValueError("memory latency must be >= 1 cycle")
        self.program = program
        self.prefix = prefix
        self.latency = latency
        self.pokes = {f"{prefix}{reg}" for reg in (
            "fromIMem_data", "fromIMem_valid", "toIMem_valid",
            "fromDMem_data", "fromDMem_valid", "toDMem_valid")}
        self.reset()

    def reset(self) -> None:
        self.memory: Dict[int, int] = self.program.memory_image()
        self.tohost: Optional[int] = None
        self.outputs: List[int] = []
        self.imem_reads = 0
        self.dmem_accesses = 0
        #: (remaining_delay, register, value) responses in flight.
        self._in_flight: List[List] = []

    @property
    def halted(self) -> bool:
        return self.tohost is not None

    def _respond(self, sim: SimHandle, register: str, value: int) -> None:
        if self.latency == 1:
            sim.poke(f"{register}_data", value)
            sim.poke(f"{register}_valid", 1)
        else:
            self._in_flight.append([self.latency - 1, register, value])

    def after_cycle(self, sim: SimHandle) -> None:
        p = self.prefix
        # Deliver responses whose delay has elapsed.
        still_waiting = []
        for entry in self._in_flight:
            entry[0] -= 1
            if entry[0] <= 0:
                sim.poke(f"{entry[1]}_data", entry[2])
                sim.poke(f"{entry[1]}_valid", 1)
            else:
                still_waiting.append(entry)
        self._in_flight = still_waiting

        if sim.peek(f"{p}toIMem_valid"):
            addr = sim.peek(f"{p}toIMem_addr")
            self._respond(sim, f"{p}fromIMem", self.memory.get(addr & ~3, 0))
            sim.poke(f"{p}toIMem_valid", 0)
            self.imem_reads += 1
        if sim.peek(f"{p}toDMem_valid"):
            request = DMEM_REQ.unpack(sim.peek(f"{p}toDMem_data"))
            self.dmem_accesses += 1
            addr = request["addr"]
            if request["is_store"]:
                value = request["data"]
                if addr == TOHOST_ADDR:
                    if self.tohost is None:
                        self.tohost = value
                elif addr == OUTPUT_ADDR:
                    self.outputs.append(value)
                else:
                    store_to(self.memory, addr, value, request["funct3"])
            else:
                self._respond(sim, f"{p}fromDMem",
                              load_from(self.memory, addr,
                                        request["funct3"]))
            sim.poke(f"{p}toDMem_valid", 0)


def make_core_env(program: Program, prefixes: tuple = ("",),
                  latency: int = 1) -> Environment:
    """Environment with one memory device per core prefix."""
    env = Environment()
    for prefix in prefixes:
        env.add_device(RV32MemoryDevice(program, prefix, latency=latency))
    return env


def run_program(sim, env: Environment, max_cycles: int = 2_000_000):
    """Run a core simulation until its (first) memory device sees TOHOST.

    Returns ``(result, cycles)``.
    """
    devices = [d for d in env.devices if isinstance(d, RV32MemoryDevice)]
    primary = devices[0]
    cycles = sim.run_until(lambda _s: primary.halted, max_cycles=max_cycles)
    return primary.tohost, cycles
