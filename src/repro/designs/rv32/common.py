"""Shared combinational pieces of the RV32 cores: instruction decoder,
ALU, branch unit, and the pipeline-stage structs.

These are Kôika *internal functions* (pure), so Cuttlesim emits them as
plain, readable Python functions in the generated model — the "zero-cost
idiomatic patterns" readability story of the paper.
"""

from __future__ import annotations

from ...koika.ast import Action, Binop, C, If, Let, Unop, V
from ...koika.design import Design, Fn
from ...koika.dsl import mux, switch
from ...koika.types import StructType, bits
from ...riscv import encoding as enc

#: Decoded-instruction struct carried from decode to execute.
DINST = StructType("dinst", [
    ("opcode", bits(7)),
    ("funct3", bits(3)),
    ("alt", bits(1)),       # funct7[5] when it selects sub/sra
    ("rd", bits(5)),
    ("rs1", bits(5)),
    ("rs2", bits(5)),
    ("imm", bits(32)),
    ("wen", bits(1)),       # writes a destination register
    ("mdiv", bits(1)),      # RV32M op (funct7 == 0b0000001 under OP_REG)
])

#: Fetch-to-decode entry.
F2D = StructType("f2d", [
    ("pc", bits(32)),
    ("ppc", bits(32)),
    ("epoch", bits(1)),
])

#: Decode-to-execute entry.
D2E = StructType("d2e", [
    ("pc", bits(32)),
    ("ppc", bits(32)),
    ("epoch", bits(1)),
    ("dinst", DINST),
    ("rval1", bits(32)),
    ("rval2", bits(32)),
])

#: Execute-to-writeback entry.
E2W = StructType("e2w", [
    ("rd", bits(5)),
    ("wen", bits(1)),
    ("poisoned", bits(1)),
    ("is_load", bits(1)),
    ("wdata", bits(32)),
])

#: Data-memory request (serviced by the testbench memory device).
DMEM_REQ = StructType("dmem_req", [
    ("is_store", bits(1)),
    ("funct3", bits(3)),
    ("addr", bits(32)),
    ("data", bits(32)),
])


def _imm_i(instr: Action) -> Action:
    return instr[20:32].sext(32)


def _imm_s(instr: Action) -> Action:
    return (instr[25:32].concat(instr[7:12])).sext(32)


def _imm_b(instr: Action) -> Action:
    joined = instr[31].concat(instr[7]).concat(instr[25:31]) \
        .concat(instr[8:12]).concat(C(0, 1))
    return joined.sext(32)


def _imm_u(instr: Action) -> Action:
    return instr[12:32].concat(C(0, 12))


def _imm_j(instr: Action) -> Action:
    joined = instr[31].concat(instr[12:20]).concat(instr[20]) \
        .concat(instr[21:31]).concat(C(0, 1))
    return joined.sext(32)


def add_decoder(design: Design, prefix: str = "") -> Fn:
    """Define ``decode(instr) -> DINST`` on the design."""
    instr = V("instr")
    opcode = instr[0:7]
    funct3 = instr[12:15]
    rd = instr[7:12]
    rs1 = instr[15:20]
    rs2 = instr[20:25]

    writing_opcodes = (enc.OP_LUI, enc.OP_AUIPC, enc.OP_JAL, enc.OP_JALR,
                       enc.OP_LOAD, enc.OP_IMM, enc.OP_REG)
    wen: Action = C(0, 1)
    for op in writing_opcodes:
        wen = wen | (opcode == C(op, 7))

    imm = switch(opcode, [
        (C(enc.OP_IMM, 7), _imm_i(instr)),
        (C(enc.OP_LOAD, 7), _imm_i(instr)),
        (C(enc.OP_JALR, 7), _imm_i(instr)),
        (C(enc.OP_STORE, 7), _imm_s(instr)),
        (C(enc.OP_BRANCH, 7), _imm_b(instr)),
        (C(enc.OP_LUI, 7), _imm_u(instr)),
        (C(enc.OP_AUIPC, 7), _imm_u(instr)),
        (C(enc.OP_JAL, 7), _imm_j(instr)),
    ], default=C(0, 32))

    # funct7[5] is "alt" (sub/sra) only where the encoding says so.
    alt_applies = (opcode == C(enc.OP_REG, 7)) | \
        ((opcode == C(enc.OP_IMM, 7)) & (funct3 == C(0b101, 3)))
    alt = mux(alt_applies, instr[30], C(0, 1))
    # funct7[0] marks the M extension (only meaningful under OP_REG).
    mdiv = mux(opcode == C(enc.OP_REG, 7), instr[25], C(0, 1))

    body = (
        C(0, DINST)
        .subst("opcode", opcode)
        .subst("funct3", funct3)
        .subst("alt", alt)
        .subst("rd", rd)
        .subst("rs1", rs1)
        .subst("rs2", rs2)
        .subst("imm", imm)
        .subst("wen", wen)
        .subst("mdiv", mdiv)
    )
    return design.fn(f"{prefix}decode", [("instr", 32)], body)


def add_alu(design: Design, prefix: str = "") -> Fn:
    """Define ``alu(funct3, alt, a, b) -> bits32`` on the design."""
    funct3, alt = V("funct3"), V("alt")
    a, b = V("a"), V("b")
    shamt = b[0:5]
    body = switch(funct3, [
        (C(0b000, 3), mux(alt == C(1, 1), a - b, a + b)),
        (C(0b001, 3), a << shamt),
        (C(0b010, 3), a.slt(b).zext(32)),
        (C(0b011, 3), (a < b).zext(32)),
        (C(0b100, 3), a ^ b),
        (C(0b101, 3), mux(alt == C(1, 1), a.sra(shamt), a >> shamt)),
        (C(0b110, 3), a | b),
    ], default=a & b)
    return design.fn(f"{prefix}alu",
                     [("funct3", 3), ("alt", 1), ("a", 32), ("b", 32)], body)


def add_muldiv_unit(design: Design, prefix: str = "") -> Fn:
    """Define ``muldiv(funct3, a, b) -> bits32`` (RV32M, single-cycle).

    A combinational multiplier/divider is an idealization (real cores
    iterate); it keeps the pipeline single-issue-per-stage and is
    cycle-accurate against *this* design's RTL, which uses the same
    single-cycle ``divu``/``remu`` netlist primitives.
    """
    funct3 = V("funct3")
    a, b = V("a"), V("b")
    wide_a_s = a.sext(64)
    wide_b_s = b.sext(64)
    wide_a_u = a.zext(64)
    wide_b_u = b.zext(64)
    body = switch(funct3, [
        (C(0b000, 3), a * b),
        (C(0b001, 3), (wide_a_s * wide_b_s)[32:64]),
        (C(0b010, 3), (wide_a_s * wide_b_u)[32:64]),
        (C(0b011, 3), (wide_a_u * wide_b_u)[32:64]),
        (C(0b100, 3), _signed_div(a, b)),
        (C(0b101, 3), Binop("divu", a, b)),
        (C(0b110, 3), _signed_rem(a, b)),
    ], default=Binop("remu", a, b))
    return design.fn(f"{prefix}muldiv",
                     [("funct3", 3), ("a", 32), ("b", 32)], body)


def _abs32(value: Action) -> Action:
    return mux(value[31] == C(1, 1), Unop("neg", value), value)


def _signed_div(a: Action, b: Action) -> Action:
    quotient = Binop("divu", _abs32(a), _abs32(b))
    negate = (a[31] ^ b[31]) == C(1, 1)
    return mux(b == C(0, 32), C(0xFFFFFFFF, 32),
               mux(negate, Unop("neg", quotient), quotient))


def _signed_rem(a: Action, b: Action) -> Action:
    remainder = Binop("remu", _abs32(a), _abs32(b))
    return mux(b == C(0, 32), a,
               mux(a[31] == C(1, 1), Unop("neg", remainder), remainder))


def add_branch_unit(design: Design, prefix: str = "") -> Fn:
    """Define ``branch_taken(funct3, a, b) -> bits1`` on the design."""
    funct3, a, b = V("funct3"), V("a"), V("b")
    body = switch(funct3, [
        (C(0b000, 3), a == b),
        (C(0b001, 3), a != b),
        (C(0b100, 3), a.slt(b)),
        (C(0b101, 3), a.sge(b)),
        (C(0b110, 3), a < b),
    ], default=a >= b)
    return design.fn(f"{prefix}branch_taken",
                     [("funct3", 3), ("a", 32), ("b", 32)], body)
