"""Pipeline visualization for the RV32 cores.

Renders, per cycle, which instruction occupies each pipeline stage —
straight from the architectural registers of a running simulation (any
backend), with instructions disassembled by ``repro.riscv.disasm``.  A
different way to *see* the case-study phenomena: scoreboard stalls show
up as an instruction parked in DECODE, mispredict flushes as poisoned
bubbles marching through EXEC/WB.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...riscv.disasm import disassemble
from .common import D2E, E2W, F2D


class StageView:
    """What one pipeline stage holds in one cycle."""

    __slots__ = ("stage", "text", "pc", "note")

    def __init__(self, stage: str, text: str, pc: Optional[int] = None,
                 note: str = ""):
        self.stage = stage
        self.text = text
        self.pc = pc
        self.note = note

    def __repr__(self) -> str:
        location = f"{self.pc:#07x}  " if self.pc is not None else " " * 9
        suffix = f"   [{self.note}]" if self.note else ""
        return f"{self.stage:<6} {location}{self.text}{suffix}"


class PipelineViewer:
    """Snapshots the fetch/decode/execute/writeback stages of a core."""

    def __init__(self, sim, memory: Dict[int, int], prefix: str = ""):
        self.sim = sim
        self.memory = memory
        self.prefix = prefix

    def _disasm_at(self, pc: int) -> str:
        word = self.memory.get(pc & ~3)
        if word is None:
            return "<no instruction>"
        return disassemble(word, pc=pc)

    def snapshot(self) -> List[StageView]:
        """The four stages' occupancy at the current cycle boundary."""
        sim, p = self.sim, self.prefix
        stages: List[StageView] = []

        fetch_pc = sim.peek(f"{p}pc")
        stages.append(StageView("FETCH", self._disasm_at(fetch_pc),
                                pc=fetch_pc))

        if sim.peek(f"{p}f2d_valid"):
            entry = F2D.unpack(sim.peek(f"{p}f2d_data"))
            stages.append(StageView("DECODE", self._disasm_at(entry["pc"]),
                                    pc=entry["pc"]))
        else:
            stages.append(StageView("DECODE", "--- bubble ---"))

        if sim.peek(f"{p}d2e_valid"):
            entry = D2E.unpack(sim.peek(f"{p}d2e_data"))
            epoch = sim.peek(f"{p}epoch")
            note = "stale epoch" if entry["epoch"] != epoch else ""
            stages.append(StageView("EXEC", self._disasm_at(entry["pc"]),
                                    pc=entry["pc"], note=note))
        else:
            stages.append(StageView("EXEC", "--- bubble ---"))

        if sim.peek(f"{p}e2w_valid"):
            entry = E2W.unpack(sim.peek(f"{p}e2w_data"))
            note = "poisoned" if entry["poisoned"] else ""
            destination = f"-> x{entry['rd']}" if entry["wen"] else "(no wb)"
            stages.append(StageView("WB", destination, note=note))
        else:
            stages.append(StageView("WB", "--- bubble ---"))
        return stages

    def render(self) -> str:
        return "\n".join(repr(stage) for stage in self.snapshot())

    def timeline(self, cycles: int, width: int = 30) -> str:
        """Run ``cycles`` cycles, rendering a compact one-line-per-cycle
        view: cycle number, committed rules, and the DECODE occupant."""
        lines = []
        for _ in range(cycles):
            committed = self.sim.run_cycle()
            stages = {s.stage: s for s in self.snapshot()}
            decode = stages["DECODE"]
            fired = ",".join(sorted(r.replace(self.prefix, "")
                                    for r in committed))
            lines.append(f"c{self.sim.cycle:<5} [{fired:<36}] "
                         f"DECODE: {decode.text[:width]}")
        return "\n".join(lines)
