"""Pipelined RV32 cores (rv32i, rv32e, rv32i-bp, rv32i-mc)."""

from .common import D2E, DINST, DMEM_REQ, E2W, F2D
from .core import (add_rv32_core, build_rv32e, build_rv32i, build_rv32i_bp,
                   build_rv32i_bypass, build_rv32i_mc, build_rv32im)
from .memory import RV32MemoryDevice, make_core_env, run_program
from .cache import (CacheMemoryDevice, add_dcache, add_icache,
                    build_rv32i_cached, make_cached_env)
from .checker import GoldenLockstep, LockstepMismatch
from .viewer import PipelineViewer, StageView

__all__ = [
    "D2E", "DINST", "DMEM_REQ", "E2W", "F2D",
    "add_rv32_core", "build_rv32e", "build_rv32i", "build_rv32i_bp",
    "build_rv32i_bypass", "build_rv32i_mc", "build_rv32im",
    "RV32MemoryDevice", "make_core_env",
    "run_program", "PipelineViewer", "StageView", "GoldenLockstep",
    "LockstepMismatch", "CacheMemoryDevice", "add_dcache", "add_icache",
    "build_rv32i_cached", "make_cached_env",
]
