"""Reusable hardware building blocks beyond the core DSL FIFOs.

These mirror the standard-library modules rule-based designs lean on
(Bluespec's ``FIFOF``/``LFSR``/counters).  Each block is a plain Python
helper that adds registers to a design and returns action builders, so
every backend and every analysis sees ordinary Kôika registers.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Union

from ..errors import KoikaElaborationError
from ..koika.ast import Action, Binop, C, If, Let, V, unit
from ..koika.design import Design, Register, StreamInfo
from ..koika.dsl import guard, mux, seq, when
from ..koika.types import Type, bits


class Fifo2:
    """A two-element FIFO (ring of two slots) with the pipelined port
    discipline: dequeue at port 0, enqueue at port 1, so a full FIFO still
    accepts an element in the cycle its head is dequeued."""

    def __init__(self, design: Design, name: str, typ: Union[Type, int]):
        if isinstance(typ, int):
            typ = bits(typ)
        self.name = name
        self.typ = typ
        self.data0 = design.reg(f"{name}_d0", typ, 0)
        self.data1 = design.reg(f"{name}_d1", typ, 0)
        #: Number of valid elements (0..2); head is always slot 0.
        self.count = design.reg(f"{name}_count", 2, 0)

    def can_enq(self) -> Action:
        return self.count.rd1() < C(2, 2)

    def enq(self, value: Action) -> Action:
        count = self.count.rd1()
        return seq(
            guard(count < C(2, 2)),
            If(count == C(0, 2),
               self.data0.wr1(value),
               self.data1.wr1(value)),
            self.count.wr1(count + C(1, 2)),
        )

    def can_deq(self) -> Action:
        return self.count.rd0() != C(0, 2)

    def first(self) -> Action:
        return seq(guard(self.can_deq()), self.data0.rd0())

    def deq(self) -> Action:
        """Dequeue the head; the second element (if any) shifts down."""
        return seq(
            guard(self.can_deq()),
            self.data0.wr0(self.data1.rd0()),
            self.count.wr0(self.count.rd0() - C(1, 2)),
            self.data0.rd0(),
        )


class SaturatingCounter:
    """An n-bit saturating up/down counter (the BHT's building block)."""

    def __init__(self, design: Design, name: str, width: int = 2,
                 init: int = 0):
        if width < 1:
            raise KoikaElaborationError("counter width must be >= 1")
        self.width = width
        self.reg = design.reg(name, width, init)
        self._max = (1 << width) - 1

    def value(self, port: int = 0) -> Action:
        return self.reg.read(port)

    def increment(self, port: int = 0) -> Action:
        current = self.reg.read(port)
        return self.reg.write(port, mux(
            current == C(self._max, self.width),
            C(self._max, self.width), current + C(1, self.width)))

    def decrement(self, port: int = 0) -> Action:
        current = self.reg.read(port)
        return self.reg.write(port, mux(
            current == C(0, self.width),
            C(0, self.width), current - C(1, self.width)))

    def update(self, up: Action, port: int = 0) -> Action:
        """Increment when ``up`` is 1, decrement otherwise (saturating)."""
        current = self.reg.read(port)
        bumped = mux(current == C(self._max, self.width),
                     C(self._max, self.width), current + C(1, self.width))
        dropped = mux(current == C(0, self.width),
                      C(0, self.width), current - C(1, self.width))
        return self.reg.write(port, mux(up == C(1, 1), bumped, dropped))


class Lfsr:
    """A Galois LFSR (pseudo-random source for randomized testbenches
    built *in hardware*, e.g. stress-pattern generators)."""

    #: Maximal-period taps per width (Galois form).
    TAPS = {8: 0xB8, 16: 0xB400, 32: 0xA3000000}

    def __init__(self, design: Design, name: str, width: int = 16,
                 seed: int = 1):
        if width not in self.TAPS:
            raise KoikaElaborationError(
                f"no tap table for width {width}; choose from "
                f"{sorted(self.TAPS)}")
        if seed == 0:
            raise KoikaElaborationError("LFSR seed must be nonzero")
        self.width = width
        self.reg = design.reg(name, width, seed)

    def value(self, port: int = 0) -> Action:
        return self.reg.read(port)

    def step(self, port: int = 0) -> Action:
        """Advance the LFSR one step (write at ``port``)."""
        state = self.reg.read(port)
        shifted = state >> 1
        taps = C(self.TAPS[self.width], self.width)
        return self.reg.write(port, mux(
            state[0] == C(1, 1), shifted ^ taps, shifted))


def lfsr_reference(width: int, seed: int, steps: int) -> int:
    """Software model of :class:`Lfsr` (for tests)."""
    taps = Lfsr.TAPS[width]
    state = seed
    for _ in range(steps):
        lsb = state & 1
        state >>= 1
        if lsb:
            state ^= taps
    return state


def _fresh_name(design: Design, hint: str) -> str:
    """A Let-binder name that is unique *per design*, so elaboration stays
    byte-deterministic (same builder order => same names => cache hits)."""
    counter = getattr(design, "_dsl_fresh_names", 0) + 1
    design._dsl_fresh_names = counter
    return f"_{hint}{counter}"


#: Width of the wrap-around ``pushed``/``popped`` observability counters.
STREAM_COUNTER_WIDTH = 16


class StreamFifo:
    """A handshaked stream FIFO of parameterized depth.

    Built on the EHR-style forwarding discipline of :class:`Fifo2`:
    dequeue at port 0, enqueue at port 1, so a full FIFO still accepts an
    element in the cycle its head is dequeued — provided the consumer
    rule is scheduled *before* the producer rule.  The head is always
    slot 0; a dequeue shifts the remaining elements down one slot.

    Beyond the data path, every StreamFifo carries four *observability*
    registers (wrap-around ``pushed``/``popped`` counters plus
    last-payload mirrors ``_in``/``_out``) and registers itself in
    ``design.streams`` so the harness's :class:`~repro.harness.streams.
    StreamObserver` can reconstruct the per-cycle transaction stream on
    any backend without instrumenting the simulator.  The port rules
    already guarantee at most one push and one pop per stream per cycle
    (a second enqueue's ``wr1`` on ``count`` conflicts and aborts), so
    the single-payload mirrors are exact.
    """

    def __init__(self, design: Design, name: str, typ: Union[Type, int],
                 depth: int = 2):
        if isinstance(typ, int):
            typ = bits(typ)
        if depth < 1:
            raise KoikaElaborationError("StreamFifo depth must be >= 1")
        if name in design.streams:
            raise KoikaElaborationError(f"duplicate stream {name!r}")
        self.design = design
        self.name = name
        self.typ = typ
        self.depth = depth
        self.count_width = depth.bit_length()
        self.slots: List[Register] = [
            design.reg(f"{name}_q{i}", typ, 0) for i in range(depth)]
        self.count = design.reg(f"{name}_count", self.count_width, 0)
        self.pushed = design.reg(f"{name}_pushed", STREAM_COUNTER_WIDTH, 0)
        self.popped = design.reg(f"{name}_popped", STREAM_COUNTER_WIDTH, 0)
        self.data_in = design.reg(f"{name}_in", typ, 0)
        self.data_out = design.reg(f"{name}_out", typ, 0)
        design.streams[name] = StreamInfo(
            name=name, depth=depth, count=self.count.name,
            pushed=self.pushed.name, popped=self.popped.name,
            data_in=self.data_in.name, data_out=self.data_out.name)
        design.lint_observed.update((self.pushed.name, self.popped.name,
                                     self.data_in.name, self.data_out.name))

    # -- producer side (port 1) -------------------------------------------
    def can_enq(self) -> Action:
        return self.count.rd1() < C(self.depth, self.count_width)

    def enq(self, value: Action) -> Action:
        """Append ``value``; aborts the rule when full (backpressure)."""
        cw = self.count_width
        idx = _fresh_name(self.design, "enq_idx")
        val = _fresh_name(self.design, "enq_val")
        parts: List[Action] = [guard(V(idx) < C(self.depth, cw))]
        for i in range(self.depth):
            parts.append(when(V(idx) == C(i, cw),
                              self.slots[i].wr1(V(val))))
        parts.append(self.count.wr1(V(idx) + C(1, cw)))
        parts.append(self.pushed.wr1(
            self.pushed.rd1() + C(1, STREAM_COUNTER_WIDTH)))
        parts.append(self.data_in.wr1(V(val)))
        return Let(idx, self.count.rd1(),
                   Let(val, value, seq(*parts)))

    # -- consumer side (port 0) -------------------------------------------
    def can_deq(self) -> Action:
        return self.count.rd0() != C(0, self.count_width)

    def first(self) -> Action:
        return seq(guard(self.can_deq()), self.slots[0].rd0())

    def deq(self) -> Action:
        """Dequeue and return the head; aborts the rule when empty."""
        cw = self.count_width
        parts: List[Action] = [guard(self.can_deq())]
        for i in range(self.depth - 1):
            parts.append(self.slots[i].wr0(self.slots[i + 1].rd0()))
        parts.append(self.count.wr0(
            self.count.rd0() - C(1, cw)))
        parts.append(self.popped.wr0(
            self.popped.rd0() + C(1, STREAM_COUNTER_WIDTH)))
        parts.append(self.data_out.wr0(self.slots[0].rd0()))
        parts.append(self.slots[0].rd0())
        return seq(*parts)


class SkidBuffer:
    """A credit-based skid buffer: a :class:`StreamFifo` plus an explicit
    credit counter the producer spends (``offer``) and the consumer
    returns (``take``).  The invariant ``credits == depth - occupancy``
    holds by construction — both sides update the credit in the same
    atomic rule as the FIFO operation — and the stream oracle's
    conservation checker verifies it from the transaction log.

    Duck-types the :class:`StreamFifo` handshake (``enq``/``deq``/
    ``can_enq``/``can_deq``/``first``/``name``) so sources, sinks, and
    combinators compose with it unchanged.
    """

    def __init__(self, design: Design, name: str, typ: Union[Type, int],
                 depth: int = 2):
        self.fifo = StreamFifo(design, name, typ, depth)
        self.name = name
        self.typ = self.fifo.typ
        self.depth = depth
        self.count_width = self.fifo.count_width
        self.credits = design.reg(f"{name}_credits", self.count_width, depth)

    def can_enq(self) -> Action:
        return self.credits.rd1() != C(0, self.count_width)

    def offer(self, value: Action) -> Action:
        """Producer side: spend a credit and enqueue (aborts when out of
        credits, which coincides with the FIFO being full)."""
        cw = self.count_width
        return seq(
            guard(self.credits.rd1() != C(0, cw)),
            self.credits.wr1(self.credits.rd1() - C(1, cw)),
            self.fifo.enq(value),
        )

    enq = offer

    def can_deq(self) -> Action:
        return self.fifo.can_deq()

    def first(self) -> Action:
        return self.fifo.first()

    def take(self) -> Action:
        """Consumer side: dequeue and return a credit."""
        cw = self.count_width
        return seq(
            self.credits.wr0(self.credits.rd0() + C(1, cw)),
            self.fifo.deq(),
        )

    deq = take


class StreamSource:
    """Drives a stream from a deterministic in-hardware generator.

    ``mode="counter"`` emits 0, 1, 2, … ; ``mode="lfsr"`` emits a Galois
    LFSR sequence.  ``every=N`` (N a power of two) paces emission to one
    beat every N cycles via a free-running phase register.  The phase
    advances in its own unconditional ``{name}_tick`` rule — advancing it
    inside the emit rule would stall the clock whenever backpressure
    aborts the emit.  Schedule ``{name}_tick`` *after* ``{name}_emit``
    (the emit's ``rd0`` of the phase must precede the tick's ``wr0``);
    :attr:`rule_names` is already in that order.

    When the producer is paced but the FIFO is full, the beat is simply
    retried next matching phase: the generator state rolls back with the
    aborted rule, so no values are ever skipped.
    """

    def __init__(self, design: Design, name: str, fifo: StreamFifo,
                 mode: str = "counter", every: int = 1, seed: int = 1):
        if every < 1 or (every & (every - 1)) != 0:
            raise KoikaElaborationError(
                "StreamSource every= must be a power of two")
        self.name = name
        self.fifo = fifo
        width = fifo.typ.width
        parts: List[Action] = []
        self.rule_names: List[str] = [f"{name}_emit"]
        if every > 1:
            self.phase = design.reg(f"{name}_phase", 8, 0)
            design.rule(f"{name}_tick",
                        self.phase.wr0(self.phase.rd0() + C(1, 8)))
            self.rule_names.append(f"{name}_tick")
            parts.append(guard(
                (self.phase.rd0() & C(every - 1, 8)) == C(0, 8)))
        if mode == "counter":
            self.state = design.reg(f"{name}_next", width, 0)
            parts.append(self.fifo.enq(self.state.rd0()))
            parts.append(self.state.wr0(self.state.rd0() + C(1, width)))
        elif mode == "lfsr":
            self.lfsr = Lfsr(design, f"{name}_lfsr", width, seed)
            parts.append(self.fifo.enq(self.lfsr.value(0)))
            parts.append(self.lfsr.step(0))
        else:
            raise KoikaElaborationError(
                f"unknown StreamSource mode {mode!r}")
        design.rule(f"{name}_emit", seq(*parts))


class StreamSink:
    """Drains a stream into observable accumulators: ``{name}_last`` (the
    most recent payload), ``{name}_sum`` (wrap-around payload sum), and
    ``{name}_taken`` (beat count).  ``every=N`` paces consumption the
    same way :class:`StreamSource` paces production — tick rule last."""

    def __init__(self, design: Design, name: str, fifo: StreamFifo,
                 every: int = 1):
        if every < 1 or (every & (every - 1)) != 0:
            raise KoikaElaborationError(
                "StreamSink every= must be a power of two")
        self.name = name
        self.fifo = fifo
        width = fifo.typ.width
        self.last = design.reg(f"{name}_last", width, 0)
        self.sum = design.reg(f"{name}_sum", width, 0)
        self.taken = design.reg(f"{name}_taken", STREAM_COUNTER_WIDTH, 0)
        design.lint_observed.update(
            (self.last.name, self.sum.name, self.taken.name))
        parts: List[Action] = []
        self.rule_names: List[str] = [f"{name}_drain"]
        if every > 1:
            self.phase = design.reg(f"{name}_phase", 8, 0)
            design.rule(f"{name}_tick",
                        self.phase.wr0(self.phase.rd0() + C(1, 8)))
            self.rule_names.append(f"{name}_tick")
            parts.append(guard(
                (self.phase.rd0() & C(every - 1, 8)) == C(0, 8)))
        x = _fresh_name(design, "sink_val")
        parts.append(Let(x, self.fifo.deq(), seq(
            self.last.wr0(V(x)),
            self.sum.wr0(self.sum.rd0() + V(x)),
            self.taken.wr0(
                self.taken.rd0() + C(1, STREAM_COUNTER_WIDTH)),
        )))
        design.rule(f"{name}_drain", seq(*parts))


def map_stage(design: Design, name: str, src: StreamFifo, dst: StreamFifo,
              fn: Callable[[Action], Action]) -> str:
    """One rule moving one beat per cycle from ``src`` through ``fn`` into
    ``dst``.  Dequeue and enqueue are atomic in the rule, so backpressure
    on ``dst`` leaves the beat in ``src`` — nothing is ever dropped."""
    x = _fresh_name(design, "map_val")
    design.rule(name, Let(x, src.deq(), dst.enq(fn(V(x)))))
    design.stream_edges.append({
        "kind": "map", "ins": [src.name], "outs": [dst.name], "rule": name})
    return name


def fork_stage(design: Design, name: str, src: StreamFifo,
               dsts: Sequence[StreamFifo],
               fns: Optional[Sequence[Callable[[Action], Action]]] = None,
               ) -> str:
    """Replicate each beat of ``src`` into every stream in ``dsts``
    (optionally through a per-branch ``fns[i]``).  All-or-nothing: if any
    destination is full the rule aborts, so the branch streams advance in
    lockstep — the conservation oracle checks exactly this."""
    if not dsts:
        raise KoikaElaborationError("fork_stage needs >= 1 destination")
    if fns is not None and len(fns) != len(dsts):
        raise KoikaElaborationError("fork_stage fns/dsts length mismatch")
    x = _fresh_name(design, "fork_val")
    enqs = [dst.enq(fns[i](V(x)) if fns is not None else V(x))
            for i, dst in enumerate(dsts)]
    design.rule(name, Let(x, src.deq(), seq(*enqs)))
    design.stream_edges.append({
        "kind": "fork", "ins": [src.name],
        "outs": [dst.name for dst in dsts], "rule": name})
    return name


def join_stage(design: Design, name: str, srcs: Sequence[StreamFifo],
               dst: StreamFifo,
               fn: Callable[..., Action]) -> str:
    """Combine one beat from *every* stream in ``srcs`` through ``fn``
    into one beat on ``dst``.  Atomic: if any source is empty or ``dst``
    is full nothing moves, so the sources stay aligned beat-for-beat."""
    if not srcs:
        raise KoikaElaborationError("join_stage needs >= 1 source")
    names = [_fresh_name(design, "join_val") for _ in srcs]
    body: Action = dst.enq(fn(*[V(n) for n in names]))
    for var, src in zip(reversed(names), reversed(list(srcs))):
        body = Let(var, src.deq(), body)
    design.rule(name, body)
    design.stream_edges.append({
        "kind": "join", "ins": [src.name for src in srcs],
        "outs": [dst.name], "rule": name})
    return name


class RisingEdge:
    """Detect a 0->1 transition of a 1-bit register between cycles."""

    def __init__(self, design: Design, name: str, monitored: Register):
        if monitored.typ.width != 1:
            raise KoikaElaborationError("RisingEdge monitors 1-bit registers")
        self.monitored = monitored
        self.last = design.reg(f"{name}_last", 1, 0)

    def sample_and_detect(self) -> Action:
        """Returns 1 exactly on cycles where the value rose; also records
        the current value for the next cycle (rd0/wr0 on the shadow)."""
        current = self.monitored.rd0()
        previous = self.last.rd0()
        return seq(
            self.last.wr0(current),
            (previous == C(0, 1)) & (current == C(1, 1)),
        )
