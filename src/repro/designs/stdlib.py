"""Reusable hardware building blocks beyond the core DSL FIFOs.

These mirror the standard-library modules rule-based designs lean on
(Bluespec's ``FIFOF``/``LFSR``/counters).  Each block is a plain Python
helper that adds registers to a design and returns action builders, so
every backend and every analysis sees ordinary Kôika registers.
"""

from __future__ import annotations

from typing import Union

from ..errors import KoikaElaborationError
from ..koika.ast import Action, Binop, C, If, unit
from ..koika.design import Design, Register
from ..koika.dsl import guard, mux, seq
from ..koika.types import Type, bits


class Fifo2:
    """A two-element FIFO (ring of two slots) with the pipelined port
    discipline: dequeue at port 0, enqueue at port 1, so a full FIFO still
    accepts an element in the cycle its head is dequeued."""

    def __init__(self, design: Design, name: str, typ: Union[Type, int]):
        if isinstance(typ, int):
            typ = bits(typ)
        self.name = name
        self.typ = typ
        self.data0 = design.reg(f"{name}_d0", typ, 0)
        self.data1 = design.reg(f"{name}_d1", typ, 0)
        #: Number of valid elements (0..2); head is always slot 0.
        self.count = design.reg(f"{name}_count", 2, 0)

    def can_enq(self) -> Action:
        return self.count.rd1() < C(2, 2)

    def enq(self, value: Action) -> Action:
        count = self.count.rd1()
        return seq(
            guard(count < C(2, 2)),
            If(count == C(0, 2),
               self.data0.wr1(value),
               self.data1.wr1(value)),
            self.count.wr1(count + C(1, 2)),
        )

    def can_deq(self) -> Action:
        return self.count.rd0() != C(0, 2)

    def first(self) -> Action:
        return seq(guard(self.can_deq()), self.data0.rd0())

    def deq(self) -> Action:
        """Dequeue the head; the second element (if any) shifts down."""
        return seq(
            guard(self.can_deq()),
            self.data0.wr0(self.data1.rd0()),
            self.count.wr0(self.count.rd0() - C(1, 2)),
            self.data0.rd0(),
        )


class SaturatingCounter:
    """An n-bit saturating up/down counter (the BHT's building block)."""

    def __init__(self, design: Design, name: str, width: int = 2,
                 init: int = 0):
        if width < 1:
            raise KoikaElaborationError("counter width must be >= 1")
        self.width = width
        self.reg = design.reg(name, width, init)
        self._max = (1 << width) - 1

    def value(self, port: int = 0) -> Action:
        return self.reg.read(port)

    def increment(self, port: int = 0) -> Action:
        current = self.reg.read(port)
        return self.reg.write(port, mux(
            current == C(self._max, self.width),
            C(self._max, self.width), current + C(1, self.width)))

    def decrement(self, port: int = 0) -> Action:
        current = self.reg.read(port)
        return self.reg.write(port, mux(
            current == C(0, self.width),
            C(0, self.width), current - C(1, self.width)))

    def update(self, up: Action, port: int = 0) -> Action:
        """Increment when ``up`` is 1, decrement otherwise (saturating)."""
        current = self.reg.read(port)
        bumped = mux(current == C(self._max, self.width),
                     C(self._max, self.width), current + C(1, self.width))
        dropped = mux(current == C(0, self.width),
                      C(0, self.width), current - C(1, self.width))
        return self.reg.write(port, mux(up == C(1, 1), bumped, dropped))


class Lfsr:
    """A Galois LFSR (pseudo-random source for randomized testbenches
    built *in hardware*, e.g. stress-pattern generators)."""

    #: Maximal-period taps per width (Galois form).
    TAPS = {8: 0xB8, 16: 0xB400, 32: 0xA3000000}

    def __init__(self, design: Design, name: str, width: int = 16,
                 seed: int = 1):
        if width not in self.TAPS:
            raise KoikaElaborationError(
                f"no tap table for width {width}; choose from "
                f"{sorted(self.TAPS)}")
        if seed == 0:
            raise KoikaElaborationError("LFSR seed must be nonzero")
        self.width = width
        self.reg = design.reg(name, width, seed)

    def value(self, port: int = 0) -> Action:
        return self.reg.read(port)

    def step(self, port: int = 0) -> Action:
        """Advance the LFSR one step (write at ``port``)."""
        state = self.reg.read(port)
        shifted = state >> 1
        taps = C(self.TAPS[self.width], self.width)
        return self.reg.write(port, mux(
            state[0] == C(1, 1), shifted ^ taps, shifted))


def lfsr_reference(width: int, seed: int, steps: int) -> int:
    """Software model of :class:`Lfsr` (for tests)."""
    taps = Lfsr.TAPS[width]
    state = seed
    for _ in range(steps):
        lsb = state & 1
        state >>= 1
        if lsb:
            state ^= taps
    return state


class RisingEdge:
    """Detect a 0->1 transition of a 1-bit register between cycles."""

    def __init__(self, design: Design, name: str, monitored: Register):
        if monitored.typ.width != 1:
            raise KoikaElaborationError("RisingEdge monitors 1-bit registers")
        self.monitored = monitored
        self.last = design.reg(f"{name}_last", 1, 0)

    def sample_and_detect(self) -> Action:
        """Returns 1 exactly on cycles where the value rose; also records
        the current value for the next cycle (rd0/wr0 on the shadow)."""
        current = self.monitored.rd0()
        previous = self.last.rd0()
        return seq(
            self.last.wr0(current),
            (previous == C(0, 1)) & (current == C(1, 1)),
        )
