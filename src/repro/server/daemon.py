"""The ``repro serve`` daemon: one asyncio process, many warm workers.

Layout::

    clients ──NDJSON──▶ asyncio server ──▶ JobQueue (bounded, priority)
                                              │  pop_batch (compile-key)
                                              ▼
                                 resident fork workers (warm caches)
                                              │  one record per job
                                              ▼
                               futures resolved ──▶ result frames + metrics

Unhappy paths are features, not afterthoughts:

* **backpressure** — a full queue answers a typed ``overloaded`` frame
  immediately instead of queueing unboundedly or hanging the socket;
* **per-job timeouts** — a job past its deadline gets its worker killed,
  a ``timeout`` record, and a fresh worker in the slot;
* **crash isolation** — a dying worker fails (or retries, once) only the
  job it was running; the rest of its batch silently requeues.  Respawns
  are bounded so a poisoned environment cannot fork-bomb the host;
* **graceful drain** — SIGTERM stops intake (typed ``draining`` frames),
  finishes accepted jobs, reaps every child, and exits 0.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .metrics import ServerMetrics
from .protocol import (MAX_LINE, PROTOCOL, JobSpec, ProtocolError, decode,
                       encode, parse_address)
from .queue import JobQueue, QueueFull
from .workers import ResidentWorker, execute_job

__all__ = ["ServeDaemon"]


@dataclass
class _Job:
    id: int
    spec: JobSpec
    future: asyncio.Future
    attempt: int = 0
    queue_seq: Optional[int] = field(default=None)


def _failure_record(job: _Job, status: str, error_type: str, message: str, *,
                    elapsed: float = 0.0,
                    worker_pid: Optional[int] = None) -> Dict[str, object]:
    record: Dict[str, object] = {
        "schema": PROTOCOL, "job_id": job.id, "design": job.spec.design,
        "opt": job.spec.opt, "seed": job.spec.seed,
        "priority": job.spec.priority,
        "cycles_requested": job.spec.cycles, "status": status,
        "cycles": None, "elapsed_seconds": round(elapsed, 6),
        "cycles_per_second": None, "attempt": max(job.attempt, 1),
        "error": {"type": error_type, "message": message},
    }
    if worker_pid is not None:
        record["worker"] = worker_pid
    if job.spec.meta:
        record["meta"] = job.spec.meta
    return record


class _WorkerDied(Exception):
    def __init__(self, exitcode) -> None:
        super().__init__(f"worker exited with code {exitcode}")
        self.exitcode = exitcode


class _WorkerHandle:
    """Asyncio-side view of one worker slot: readers, result queue, state."""

    def __init__(self, daemon: "ServeDaemon", index: int) -> None:
        self.daemon = daemon
        self.index = index
        self.worker: Optional[ResidentWorker] = None
        self.results: Optional[asyncio.Queue] = None
        self.busy = False
        self.disabled = False
        self.task: Optional[asyncio.Task] = None
        self._reader_fds: List[int] = []

    # Inline (fork-less) handles never get a worker process.
    @property
    def inline(self) -> bool:
        return self.daemon._context is None

    def spawn(self) -> None:
        self.worker = ResidentWorker(self.index, self.daemon._context)
        self._attach()

    def respawn(self) -> None:
        self._detach()
        self.worker.respawn()
        self._attach()

    def shutdown(self) -> None:
        self._detach()
        if self.worker is not None:
            self.worker.stop()

    def _attach(self) -> None:
        loop = asyncio.get_running_loop()
        self.results = asyncio.Queue()
        conn_fd = self.worker.conn.fileno()
        sentinel = self.worker.process.sentinel
        loop.add_reader(conn_fd, self._on_results)
        loop.add_reader(sentinel, self._on_death)
        self._reader_fds = [conn_fd, sentinel]

    def _detach(self) -> None:
        loop = asyncio.get_running_loop()
        for fd in self._reader_fds:
            try:
                loop.remove_reader(fd)
            except (OSError, ValueError):  # pragma: no cover - closed fd
                pass
        self._reader_fds = []

    def _on_results(self) -> None:
        try:
            while self.worker.conn.poll(0):
                self.results.put_nowait(self.worker.conn.recv())
        except (EOFError, OSError):
            pass  # the sentinel reader reports death authoritatively

    def _on_death(self) -> None:
        # Harvest anything the worker managed to send, then flag the death
        # exactly once (the sentinel stays readable forever, so detach).
        self._detach()
        try:
            while self.worker.conn.poll(0):
                self.results.put_nowait(self.worker.conn.recv())
        except (EOFError, OSError):
            pass
        self.results.put_nowait(("dead", self.worker.process.exitcode))


class ServeDaemon:
    """The batch-simulation service behind ``repro serve``."""

    def __init__(self, address, *, workers: int = 2, queue_limit: int = 64,
                 batch_max: int = 4, default_timeout: Optional[float] = None,
                 max_attempts: int = 2, max_respawns: Optional[int] = None,
                 drain_timeout: Optional[float] = 120.0,
                 allow_pickle: bool = False, cache_dir=None,
                 quiet: bool = False) -> None:
        self.address = address
        self.workers = max(1, int(workers))
        self.batch_max = max(1, int(batch_max))
        self.default_timeout = default_timeout
        self.max_attempts = max(1, int(max_attempts))
        self.max_respawns = self.workers * 5 if max_respawns is None \
            else int(max_respawns)
        self.drain_timeout = drain_timeout
        self.allow_pickle = allow_pickle
        self.cache_dir = cache_dir
        self.quiet = quiet

        self.queue = JobQueue(limit=queue_limit)
        self.metrics = ServerMetrics()
        self.draining = False
        self.bound_address = None

        self._handles: List[_WorkerHandle] = []
        self._context = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._unix_path: Optional[str] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._drain_mode = True
        self._stopping_workers = False
        self._inflight = 0
        self._total_respawns = 0
        self._next_job_id = 0

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        if self.cache_dir is not None:
            from ..cuttlesim.cache import reset_default_cache

            os.environ["REPRO_MODEL_CACHE"] = str(self.cache_dir)
            reset_default_cache()
        self._shutdown = asyncio.Event()
        try:
            self._context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX hosts
            self._context = None
        # Fork the pool *before* binding the socket so workers never
        # inherit the listening fd.
        for index in range(self.workers):
            handle = _WorkerHandle(self, index)
            if not handle.inline:
                handle.spawn()
            self._handles.append(handle)
        kind, target = parse_address(self.address)
        if kind == "unix":
            if os.path.exists(target):
                os.unlink(target)  # stale socket from a crashed daemon
            self._server = await asyncio.start_unix_server(
                self._handle_client, path=target, limit=MAX_LINE)
            self._unix_path = target
            self.bound_address = ("unix", target)
        else:
            host, port = target
            self._server = await asyncio.start_server(
                self._handle_client, host, port, limit=MAX_LINE)
            port = self._server.sockets[0].getsockname()[1]
            self.bound_address = ("tcp", (host, port))
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, self.request_shutdown, True)
            except (NotImplementedError, ValueError, RuntimeError):
                break  # non-main thread or platform without signal support
        self._log(f"serving {PROTOCOL} on {self.bound_address[1]!r} with "
                  f"{len(self._handles)} worker(s)"
                  + (" [inline]" if self._context is None else ""))

    def request_shutdown(self, drain: bool = True) -> None:
        """Begin shutdown; idempotent, callable from a signal handler."""
        if self._shutdown is None or self._shutdown.is_set():
            return
        self._drain_mode = drain
        self.draining = True
        self._shutdown.set()

    async def run(self) -> int:
        """Serve until shutdown is requested; returns the exit code."""
        await self.start()
        await self._shutdown.wait()
        await self._finish(self._drain_mode)
        return 0

    async def _finish(self, drain: bool) -> None:
        self.draining = True
        if drain:
            deadline = None if self.drain_timeout is None else \
                time.monotonic() + self.drain_timeout
            while self.queue or self._inflight:
                if deadline is not None and time.monotonic() > deadline:
                    self._log("drain timeout: aborting remaining jobs")
                    break
                self._pump()
                await asyncio.sleep(0.02)
        await self._abort_remaining()
        await self._reap_workers()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._unix_path and os.path.exists(self._unix_path):
            try:
                os.unlink(self._unix_path)
            except OSError:
                pass
        self._log("drained and stopped" if drain else "aborted and stopped")

    async def _abort_remaining(self) -> None:
        for job in self.queue.drain():
            self._resolve(None, job, _failure_record(
                job, "aborted", "ServerShutdown",
                "daemon shut down before the job ran"))
        for handle in self._handles:
            if handle.task is not None:
                handle.task.cancel()
        tasks = [h.task for h in self._handles if h.task is not None]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    async def _reap_workers(self) -> None:
        self._stopping_workers = True
        for handle in self._handles:
            handle.shutdown()
        deadline = time.monotonic() + 3.0
        while any(h.worker is not None and h.worker.alive
                  for h in self._handles):
            if time.monotonic() > deadline:
                break
            await asyncio.sleep(0.02)
        for handle in self._handles:
            if handle.worker is not None:
                handle.worker.kill()

    def _log(self, message: str) -> None:
        if not self.quiet:
            print(f"[repro-serve] {message}", flush=True)

    # -- client protocol ------------------------------------------------------

    async def _send(self, writer: asyncio.StreamWriter, lock: asyncio.Lock,
                    message: Dict[str, object]) -> None:
        async with lock:
            if writer.is_closing():
                return
            writer.write(encode(message))
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        lock = asyncio.Lock()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._send(writer, lock, {
                        "type": "error",
                        "error": {"type": "ProtocolError",
                                  "message": "frame too long"}})
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    message = decode(line)
                except ProtocolError as exc:
                    await self._send(writer, lock, {
                        "type": "error",
                        "error": {"type": "ProtocolError",
                                  "message": str(exc)}})
                    continue
                await self._dispatch_request(message, writer, lock)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (OSError, ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch_request(self, message, writer, lock) -> None:
        kind = message["type"]
        tag = message.get("id")
        reply = {"id": tag} if tag is not None else {}
        if kind == "ping":
            await self._send(writer, lock, {
                **reply, "type": "pong", "protocol": PROTOCOL,
                "pid": os.getpid()})
        elif kind == "stats":
            snapshot = self._stats_snapshot()
            await self._send(writer, lock, {**reply, "type": "stats",
                                            **snapshot})
        elif kind == "shutdown":
            drain = bool(message.get("drain", True))
            await self._send(writer, lock, {**reply, "type": "shutting_down",
                                            "drain": drain})
            self.request_shutdown(drain)
        elif kind == "submit":
            await self._handle_submit(message, writer, lock, reply)
        else:
            await self._send(writer, lock, {
                **reply, "type": "error",
                "error": {"type": "ProtocolError",
                          "message": f"unknown request type {kind!r}"}})

    async def _handle_submit(self, message, writer, lock, reply) -> None:
        if self.draining:
            self.metrics.bump("jobs_rejected_draining")
            await self._send(writer, lock, {**reply, "type": "draining"})
            return
        try:
            spec = JobSpec.from_payload(message.get("job"),
                                        allow_pickle=self.allow_pickle)
            if spec.design_pickle is None and spec.mode == "sim":
                from ..cli import DESIGNS

                if spec.design not in DESIGNS:
                    raise ProtocolError(
                        f"unknown design {spec.design!r}; try: "
                        f"{', '.join(sorted(DESIGNS))}")
        except ProtocolError as exc:
            await self._send(writer, lock, {
                **reply, "type": "error",
                "error": {"type": "ProtocolError", "message": str(exc)}})
            return
        self._next_job_id += 1
        job = _Job(id=self._next_job_id, spec=spec,
                   future=asyncio.get_running_loop().create_future())
        try:
            self.queue.push(job)
        except QueueFull as exc:
            self.metrics.bump("jobs_rejected_overloaded")
            await self._send(writer, lock, {
                **reply, "type": "overloaded",
                "queue_depth": exc.depth, "queue_limit": exc.limit})
            return
        self.metrics.bump("jobs_accepted")
        await self._send(writer, lock, {
            **reply, "type": "accepted", "job_id": job.id,
            "queue_depth": len(self.queue)})
        self._pump()
        asyncio.get_running_loop().create_task(
            self._deliver(job, writer, lock, reply))

    async def _deliver(self, job, writer, lock, reply) -> None:
        record = await job.future
        await self._send(writer, lock, {**reply, "type": "result",
                                        "job_id": job.id, "record": record})

    def _stats_snapshot(self) -> Dict[str, object]:
        for handle in self._handles:
            stats = self.metrics.worker(handle.index)
            if handle.worker is not None:
                stats.pid = handle.worker.pid
                stats.alive = handle.worker.alive
            elif handle.inline:
                stats.pid = os.getpid()
                stats.alive = not handle.disabled
        gauges = dict(queue_depth=len(self.queue),
                      queue_limit=self.queue.limit, inflight=self._inflight)
        return {"metrics": self.metrics.as_dict(**gauges),
                "text": self.metrics.render_prometheus(**gauges)}

    # -- scheduling -----------------------------------------------------------

    def _pump(self) -> None:
        """Hand queued jobs to idle workers; called on every state change."""
        if self._stopping_workers:
            return
        for handle in self._handles:
            if not self.queue:
                break
            if handle.busy or handle.disabled:
                continue
            if not handle.inline and not handle.worker.alive:
                if not self._try_respawn(handle):
                    continue
            batch = self.queue.pop_batch(self.batch_max)
            self._inflight += len(batch)
            self.metrics.bump("batches_dispatched")
            handle.busy = True
            runner = self._run_batch_inline if handle.inline \
                else self._run_batch
            handle.task = asyncio.get_running_loop().create_task(
                runner(handle, batch))

    def _resolve(self, handle: Optional[_WorkerHandle], job: _Job,
                 record: Dict[str, object]) -> None:
        index = handle.index if handle is not None else 0
        self.metrics.observe_record(index, record)
        if not job.future.done():
            job.future.set_result(record)

    def _finish_job(self, handle, job, record) -> None:
        self._inflight -= 1
        self._resolve(handle, job, record)

    def _requeue(self, jobs: List[_Job]) -> None:
        self._inflight -= len(jobs)
        for job in jobs:
            self.queue.push(job, force=True, seq=job.queue_seq)

    def _try_respawn(self, handle: _WorkerHandle) -> bool:
        if self._stopping_workers:
            return False
        if self._total_respawns >= self.max_respawns:
            handle.disabled = True
            self._log(f"worker {handle.index} disabled: respawn budget "
                      f"({self.max_respawns}) exhausted")
            if all(h.disabled for h in self._handles):
                for job in self.queue.drain():
                    self._resolve(None, job, _failure_record(
                        job, "error", "NoLiveWorkers",
                        "every worker slot exhausted its respawn budget"))
            return False
        self._total_respawns += 1
        self.metrics.bump("worker_respawns")
        handle.respawn()
        return True

    async def _run_batch(self, handle: _WorkerHandle,
                         jobs: List[_Job]) -> None:
        worker = handle.worker
        pending = list(jobs)
        current: Optional[_Job] = None
        try:
            items = [(job.id, job.spec.as_payload(), job.attempt + 1)
                     for job in pending]
            try:
                worker.send_batch(items)
            except (OSError, ValueError):
                raise _WorkerDied(worker.process.exitcode) from None
            for position, job in enumerate(list(pending)):
                current = job
                job.attempt += 1
                timeout = job.spec.timeout if job.spec.timeout is not None \
                    else self.default_timeout
                try:
                    message = await asyncio.wait_for(handle.results.get(),
                                                     timeout)
                except asyncio.TimeoutError:
                    self._finish_job(handle, job, _failure_record(
                        job, "timeout", "TimeoutError",
                        f"job exceeded its {timeout:.3f}s deadline; worker "
                        f"killed", elapsed=timeout, worker_pid=worker.pid))
                    self._requeue(pending[position + 1:])
                    handle._detach()
                    worker.kill()
                    self._try_respawn(handle)
                    return
                if message[0] == "dead":
                    raise _WorkerDied(message[1])
                _, job_id, record = message
                self._finish_job(handle, job, record)
                pending[position] = None
            current = None
        except _WorkerDied as died:
            survivors = [job for job in pending
                         if job is not None and job is not current]
            if current is not None:
                if current.attempt < self.max_attempts:
                    self.metrics.bump("jobs_retried")
                    self._requeue([current])
                else:
                    self._finish_job(handle, current, _failure_record(
                        current, "crash", "WorkerCrash",
                        f"worker exited with code {died.exitcode} "
                        f"(attempt {current.attempt}/{self.max_attempts})",
                        worker_pid=worker.pid))
            self._requeue(survivors)
            self._try_respawn(handle)
        except asyncio.CancelledError:
            for job in pending:
                if job is not None and not job.future.done():
                    self._finish_job(handle, job, _failure_record(
                        job, "aborted", "ServerShutdown",
                        "daemon aborted before the job finished"))
        finally:
            handle.busy = False
            handle.task = None
            self._pump()

    async def _run_batch_inline(self, handle: _WorkerHandle,
                                jobs: List[_Job]) -> None:
        """Fork-less fallback: run jobs on executor threads (no crash
        isolation, timeouts are advisory — the thread finishes in the
        background)."""
        loop = asyncio.get_running_loop()
        try:
            for job in jobs:
                job.attempt += 1
                timeout = job.spec.timeout if job.spec.timeout is not None \
                    else self.default_timeout
                work = loop.run_in_executor(None, execute_job, job.spec,
                                            job.id)
                try:
                    record = await asyncio.wait_for(
                        asyncio.shield(work), timeout)
                except asyncio.TimeoutError:
                    record = _failure_record(
                        job, "timeout", "TimeoutError",
                        f"job exceeded its {timeout:.3f}s deadline",
                        elapsed=timeout)
                self._finish_job(handle, job, record)
        except asyncio.CancelledError:
            for job in jobs:
                if not job.future.done():
                    self._finish_job(handle, job, _failure_record(
                        job, "aborted", "ServerShutdown",
                        "daemon aborted before the job finished"))
        finally:
            handle.busy = False
            handle.task = None
            self._pump()
