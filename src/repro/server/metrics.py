"""Server observability: counters, per-worker rates, Prometheus text.

The daemon is the long-lived half of the toolchain, so it gets the
observability surface the one-shot CLI never needed: monotonic counters
for every job outcome, queue/worker gauges, aggregated model-cache
hit/miss totals (summed from the per-job deltas each worker reports),
and per-worker cycles/second.  ``render_prometheus`` emits the standard
text exposition format so the ``stats`` request can be scraped directly.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from .protocol import PROTOCOL

_COUNTER_HELP = {
    "jobs_accepted": "Jobs validated and enqueued.",
    "jobs_completed": "Jobs finished with status ok.",
    "jobs_failed": "Jobs finished with an error or crash status.",
    "jobs_timed_out": "Jobs killed for exceeding their deadline.",
    "jobs_rejected_overloaded": "Submissions bounced by queue backpressure.",
    "jobs_rejected_draining": "Submissions bounced during graceful drain.",
    "jobs_retried": "Jobs requeued after a worker crash.",
    "worker_respawns": "Crashed or killed workers replaced by fresh forks.",
    "batches_dispatched": "Compatible-job batches sent to workers.",
}


class WorkerStats:
    """Cumulative per-worker accounting (survives respawns of the slot)."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.pid: Optional[int] = None
        self.alive = False
        self.jobs = 0
        self.cycles = 0
        self.busy_seconds = 0.0

    @property
    def cycles_per_second(self) -> Optional[float]:
        if not self.busy_seconds or not self.cycles:
            return None
        return self.cycles / self.busy_seconds

    def as_dict(self) -> Dict[str, object]:
        rate = self.cycles_per_second
        return {"index": self.index, "pid": self.pid, "alive": self.alive,
                "jobs": self.jobs, "cycles": self.cycles,
                "busy_seconds": round(self.busy_seconds, 6),
                "cycles_per_second": round(rate) if rate else None}


class ServerMetrics:
    """All daemon counters; the source for ``stats`` responses."""

    def __init__(self) -> None:
        self.started = time.monotonic()
        self.counters: Dict[str, int] = {name: 0 for name in _COUNTER_HELP}
        self.cache: Dict[str, int] = {"memory_hits": 0, "disk_hits": 0,
                                      "hits": 0, "misses": 0}
        self.workers: Dict[int, WorkerStats] = {}

    def bump(self, counter: str, amount: int = 1) -> None:
        self.counters[counter] += amount

    def worker(self, index: int) -> WorkerStats:
        if index not in self.workers:
            self.workers[index] = WorkerStats(index)
        return self.workers[index]

    def observe_record(self, worker_index: int,
                       record: Dict[str, object]) -> None:
        """Fold one finished job record into the totals."""
        status = record.get("status")
        if status == "ok":
            self.bump("jobs_completed")
        elif status == "timeout":
            self.bump("jobs_timed_out")
        else:
            self.bump("jobs_failed")
        stats = self.worker(worker_index)
        stats.jobs += 1
        stats.cycles += record.get("cycles") or 0
        stats.busy_seconds += record.get("elapsed_seconds") or 0.0
        for layer, count in (record.get("cache") or {}).items():
            if layer in self.cache and isinstance(count, int):
                self.cache[layer] += count

    @property
    def cache_hit_rate(self) -> Optional[float]:
        seen = self.cache["hits"] + self.cache["misses"]
        return self.cache["hits"] / seen if seen else None

    def as_dict(self, *, queue_depth: int = 0, queue_limit: int = 0,
                inflight: int = 0) -> Dict[str, object]:
        rate = self.cache_hit_rate
        return {
            "protocol": PROTOCOL,
            "uptime_seconds": round(time.monotonic() - self.started, 3),
            "counters": dict(self.counters),
            "queue_depth": queue_depth,
            "queue_limit": queue_limit,
            "inflight": inflight,
            "cache": dict(self.cache),
            "cache_hit_rate": round(rate, 4) if rate is not None else None,
            "workers": [self.workers[i].as_dict()
                        for i in sorted(self.workers)],
        }

    def render_prometheus(self, *, queue_depth: int = 0, queue_limit: int = 0,
                          inflight: int = 0) -> str:
        """The Prometheus text exposition of every counter and gauge."""
        lines: List[str] = []

        def metric(name: str, help_text: str, kind: str, samples) -> None:
            lines.append(f"# HELP repro_serve_{name} {help_text}")
            lines.append(f"# TYPE repro_serve_{name} {kind}")
            for labels, value in samples:
                label_text = "" if not labels else \
                    "{" + ",".join(f'{k}="{v}"'
                                   for k, v in sorted(labels.items())) + "}"
                lines.append(f"repro_serve_{name}{label_text} {value}")

        for name, help_text in _COUNTER_HELP.items():
            metric(f"{name}_total", help_text, "counter",
                   [({}, self.counters[name])])
        metric("uptime_seconds", "Daemon uptime.", "gauge",
               [({}, round(time.monotonic() - self.started, 3))])
        metric("queue_depth", "Jobs waiting in the priority queue.", "gauge",
               [({}, queue_depth)])
        metric("queue_limit", "Queue depth that triggers backpressure.",
               "gauge", [({}, queue_limit)])
        metric("inflight_jobs", "Jobs currently running on workers.", "gauge",
               [({}, inflight)])
        metric("cache_hits_total", "Model-cache hits across workers.",
               "counter", [({"layer": "memory"}, self.cache["memory_hits"]),
                           ({"layer": "disk"}, self.cache["disk_hits"])])
        metric("cache_misses_total", "Model-cache misses across workers.",
               "counter", [({}, self.cache["misses"])])
        workers = [self.workers[i] for i in sorted(self.workers)]
        metric("worker_alive", "1 when the worker slot has a live process.",
               "gauge", [({"worker": str(w.index)}, int(w.alive))
                         for w in workers])
        metric("worker_jobs_total", "Jobs finished per worker slot.",
               "counter", [({"worker": str(w.index)}, w.jobs)
                           for w in workers])
        metric("worker_cycles_total", "Simulated cycles per worker slot.",
               "counter", [({"worker": str(w.index)}, w.cycles)
                           for w in workers])
        metric("worker_busy_seconds_total", "Seconds spent running jobs.",
               "counter", [({"worker": str(w.index)},
                            round(w.busy_seconds, 6)) for w in workers])
        metric("worker_cycles_per_second", "Throughput per worker slot.",
               "gauge", [({"worker": str(w.index)},
                          round(w.cycles_per_second or 0)) for w in workers])
        return "\n".join(lines) + "\n"
