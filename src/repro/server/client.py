"""Synchronous client for the ``repro-serve-v1`` protocol.

A thin blocking wrapper over one socket: ``submit`` sends a job and
waits for its result frame, ``stats`` fetches the metrics snapshot plus
the Prometheus text, ``shutdown`` asks the daemon to drain or abort.
Unhappy responses raise *typed* exceptions (:class:`ServerOverloaded`,
:class:`ServerDraining`, :class:`ServeError`) so callers can tell
backpressure from failure without string-matching.

Thread-safe usage: one :class:`ServeClient` per thread (each owns its
socket); the daemon happily serves many concurrent connections.
"""

from __future__ import annotations

import socket
from typing import Dict, Optional

from .protocol import PROTOCOL, JobSpec, encode, decode, parse_address

__all__ = ["ServeClient", "ServeError", "ServerOverloaded", "ServerDraining"]


class ServeError(RuntimeError):
    """The server answered with a typed failure frame."""

    def __init__(self, message: str,
                 response: Optional[Dict[str, object]] = None) -> None:
        super().__init__(message)
        self.response = response or {}


class ServerOverloaded(ServeError):
    """Backpressure: the job queue is at capacity; retry later."""


class ServerDraining(ServeError):
    """The daemon is shutting down and no longer accepts jobs."""


class ServeClient:
    """One blocking connection to a ``repro serve`` daemon."""

    def __init__(self, address, timeout: Optional[float] = 300.0) -> None:
        self.address = parse_address(address)
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._file = None

    # -- connection -----------------------------------------------------------

    def connect(self) -> "ServeClient":
        if self._sock is not None:
            return self
        kind, target = self.address
        if kind == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        sock.connect(target)
        self._sock = sock
        self._file = sock.makefile("rb")
        return self

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- framing --------------------------------------------------------------

    def send(self, message: Dict[str, object]) -> None:
        self.connect()
        self._sock.sendall(encode(message))

    def read(self) -> Dict[str, object]:
        line = self._file.readline()
        if not line:
            raise ServeError("server closed the connection")
        return decode(line)

    def _raise_for(self, response: Dict[str, object]) -> None:
        kind = response.get("type")
        if kind == "overloaded":
            raise ServerOverloaded(
                f"queue at capacity "
                f"({response.get('queue_depth')}/"
                f"{response.get('queue_limit')})", response)
        if kind == "draining":
            raise ServerDraining("server is draining", response)
        if kind == "error":
            error = response.get("error") or {}
            raise ServeError(f"{error.get('type', 'Error')}: "
                             f"{error.get('message', '?')}", response)

    def request(self, message: Dict[str, object],
                expect: str) -> Dict[str, object]:
        """Send one frame and read until the expected response type."""
        self.send(message)
        while True:
            response = self.read()
            self._raise_for(response)
            if response.get("type") == expect:
                return response

    # -- the protocol ---------------------------------------------------------

    def ping(self) -> Dict[str, object]:
        response = self.request({"type": "ping"}, expect="pong")
        if response.get("protocol") != PROTOCOL:
            raise ServeError(f"protocol mismatch: {response!r}", response)
        return response

    def stats(self) -> Dict[str, object]:
        """The metrics snapshot; ``["text"]`` is the Prometheus page."""
        return self.request({"type": "stats"}, expect="stats")

    def shutdown(self, drain: bool = True) -> Dict[str, object]:
        return self.request({"type": "shutdown", "drain": drain},
                            expect="shutting_down")

    def submit(self, design: Optional[str] = None, *, spec: JobSpec = None,
               wait: bool = True, tag=None,
               **job_fields) -> Dict[str, object]:
        """Submit one job; block until its record arrives (``wait=True``).

        Either pass a prebuilt :class:`JobSpec` or keyword fields
        (``cycles=``, ``seed=``, ``priority=``, ...).  Returns the per-job
        ``repro-serve-v1`` record, or the ``accepted`` frame when
        ``wait=False`` (read results later with :meth:`read`).
        """
        if spec is None:
            payload = dict(job_fields)
            payload["design"] = design
            spec = JobSpec.from_payload(payload, allow_pickle=True)
        message: Dict[str, object] = {"type": "submit",
                                      "job": spec.as_payload()}
        if tag is not None:
            message["id"] = tag
        self.send(message)
        accepted = None
        while True:
            response = self.read()
            self._raise_for(response)
            if response.get("type") == "accepted":
                accepted = response
                if not wait:
                    return accepted
            elif response.get("type") == "result":
                return response["record"]
