"""repro.server: a persistent batch-simulation service.

The one-shot CLI pays model compilation (or at best a disk-cache load)
and a process fork on every invocation.  ``repro serve`` keeps a daemon
resident instead: a bounded priority queue feeds pre-forked workers
whose in-process model caches stay warm across jobs, so the steady-state
hot path is a pipe write, a dict lookup, and the simulation itself.
Speaks the newline-delimited-JSON ``repro-serve-v1`` protocol over a
Unix or TCP socket; see :mod:`repro.server.protocol` for the frames and
``docs/api.md`` for the operational story (backpressure, timeouts,
crash isolation, SIGTERM drain, Prometheus ``stats``).
"""

from .client import ServeClient, ServeError, ServerDraining, ServerOverloaded
from .daemon import ServeDaemon
from .metrics import ServerMetrics
from .protocol import (PROTOCOL, JobSpec, ProtocolError, default_socket_path,
                       parse_address)
from .queue import JobQueue, QueueFull
from .workers import ResidentWorker, build_trial, execute_job, job_record

__all__ = [
    "PROTOCOL", "JobSpec", "ProtocolError", "default_socket_path",
    "parse_address", "JobQueue", "QueueFull", "ServerMetrics",
    "ResidentWorker", "build_trial", "execute_job", "job_record",
    "ServeDaemon", "ServeClient", "ServeError", "ServerDraining",
    "ServerOverloaded",
]
