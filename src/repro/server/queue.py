"""Bounded priority job queue with compatible-job batching.

Higher ``priority`` runs first; within a priority level jobs run in
submission order.  The queue is *bounded*: pushing past ``limit`` raises
:class:`QueueFull`, which the daemon turns into a typed ``overloaded``
response — backpressure is an answer, not a hang.

``pop_batch`` pops the frontmost job plus up to ``max_batch - 1`` later
jobs sharing its :attr:`~repro.server.protocol.JobSpec.compile_key`, so a
resident worker runs a streak of jobs against one warm compiled model.
Batching never reorders across priorities for the *lead* job — it only
pulls compatible followers forward, which is exactly the cache-locality
trade the server exists to make.
"""

from __future__ import annotations

import heapq
import itertools
from typing import List


class QueueFull(Exception):
    """Typed backpressure: the queue is at its depth limit."""

    def __init__(self, depth: int, limit: int) -> None:
        super().__init__(f"job queue at capacity ({depth}/{limit})")
        self.depth = depth
        self.limit = limit


class JobQueue:
    """Priority queue of daemon jobs (anything with ``.spec`` giving
    ``priority`` and ``compile_key``)."""

    def __init__(self, limit: int = 64) -> None:
        self.limit = max(1, int(limit))
        self._heap: List[tuple] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, job, *, force: bool = False, seq: int = None) -> None:
        """Enqueue ``job``; :class:`QueueFull` when at capacity.

        ``force`` bypasses the limit (requeues of already-accepted jobs
        must never bounce).  ``seq`` reuses an earlier submission ticket
        so a requeued job keeps its original FIFO position.
        """
        if not force and len(self._heap) >= self.limit:
            raise QueueFull(len(self._heap), self.limit)
        if seq is None:
            seq = next(self._seq)
        job.queue_seq = seq
        heapq.heappush(self._heap, (-job.spec.priority, seq, job))

    def pop(self):
        return heapq.heappop(self._heap)[2]

    def pop_batch(self, max_batch: int = 1) -> List:
        """Pop the front job plus compatible followers (same compile key)."""
        lead = self.pop()
        if max_batch <= 1 or not self._heap:
            return [lead]
        batch, keep = [lead], []
        for entry in sorted(self._heap):
            if len(batch) < max_batch and \
                    entry[2].spec.compile_key == lead.spec.compile_key:
                batch.append(entry[2])
            else:
                keep.append(entry)
        heapq.heapify(keep)
        self._heap = keep
        return batch

    def drain(self) -> List:
        """Remove and return every queued job, front first (abort path)."""
        drained = [entry[2] for entry in sorted(self._heap)]
        self._heap = []
        return drained
