"""Resident fleet workers: pre-forked processes with warm model caches.

A one-shot ``run_fleet`` forks, runs, and exits — every invocation pays
model compilation again (or at best a disk-cache read).  A *resident*
worker forks once at daemon start and then loops over job batches from a
duplex pipe, so its in-process model-cache LRU stays warm: the steady
state is a dict lookup, a fork-free ``model(env)`` construction, and the
simulation itself.

Job execution reuses :func:`repro.harness.parallel.execute_trial` — the
exact code path the fleet runs — so a job record's observation is
byte-identical to a serial ``run_fleet`` of the same spec.  Each record
also carries the worker's model-cache hit/miss *delta* for the job,
which the daemon aggregates into the served metrics.

Wire format on the pipe (picklable tuples, parent ↔ child):

* parent → child: ``("jobs", [(job_id, spec_payload, attempt), ...])``
  or ``("stop",)``;
* child → parent: ``("result", job_id, record)`` — one per job, in batch
  order.  Crashes send nothing; the parent watches the process sentinel.
"""

from __future__ import annotations

import base64
import multiprocessing
import os
import pickle
import random
from typing import Dict, Optional

from ..harness.parallel import Trial, TrialOutput, TrialResult, execute_trial
from .protocol import PROTOCOL, JobSpec

__all__ = ["build_trial", "execute_job", "job_record", "worker_loop",
           "ResidentWorker"]


def _materialize_design(spec: JobSpec):
    if spec.design_pickle is not None:
        return pickle.loads(base64.b64decode(spec.design_pickle))
    from ..cli import DESIGNS

    builder = DESIGNS.get(spec.design)
    if builder is None:
        raise ValueError(f"unknown design {spec.design!r}; try: "
                         f"{', '.join(sorted(DESIGNS))}")
    return builder()


def build_trial(spec: JobSpec) -> Trial:
    """The canonical fleet trial for a job spec.

    This is *the* definition of a job's semantics: the daemon's workers
    and any serial reference run (``run_fleet([build_trial(s)], workers=1)``)
    execute this same closure, which is what makes server results
    byte-comparable to one-shot fleet results.

    ``mode="fuzz"`` jobs delegate to the fuzz campaign's executor: the
    observation is the JSON outcome record of
    :func:`repro.fuzz.executor.run_seed_job`, the same function the
    serial campaign path calls.
    """

    if spec.mode == "fuzz":
        from ..fuzz.executor import SeedJob, run_seed_job

        seed_job = SeedJob.from_dict(spec.fuzz)

        def fuzz_fn():
            outcome = run_seed_job(seed_job)
            return TrialOutput(observation=outcome,
                               cycles=seed_job.cycles)

        return Trial(name=f"fuzz-{seed_job.seed}", fn=fuzz_fn,
                     meta={"design": spec.design, "mode": "fuzz",
                           "seed": seed_job.seed})

    def fn():
        from ..cli import _default_env
        from ..cuttlesim.codegen import compile_model

        design = _materialize_design(spec)
        model_cls = compile_model(design, opt=spec.opt,
                                  order_independent=spec.seed is not None,
                                  warn_goldberg=False, cache=True)
        env = _default_env(design, spec.program, spec.program_arg)
        model = model_cls(env)
        if spec.seed is None:
            model.run(spec.cycles)
        else:
            from ..debug.randomize import run_with_random_schedule

            rng = random.Random(spec.seed)
            run_with_random_schedule(model, rng,
                                     lambda m: m.cycle >= spec.cycles,
                                     max_cycles=spec.cycles + 1)
        return TrialOutput(observation=model.state_dict(),
                           cycles=model.cycle)

    return Trial(name=f"{spec.design}@O{spec.opt}", fn=fn,
                 meta={"design": spec.design, "opt": spec.opt,
                       "seed": spec.seed})


def job_record(spec: JobSpec, job_id: int, result: TrialResult, *,
               attempt: int = 1, worker_pid: Optional[int] = None,
               cache_delta: Optional[Dict[str, int]] = None
               ) -> Dict[str, object]:
    """The per-job ``repro-serve-v1`` BENCH JSON record."""
    record: Dict[str, object] = {
        "schema": PROTOCOL,
        "job_id": job_id,
        "design": spec.design,
        "opt": spec.opt,
        "seed": spec.seed,
        "priority": spec.priority,
        "cycles_requested": spec.cycles,
        "status": result.status,
        "cycles": result.cycles,
        "elapsed_seconds": round(result.elapsed, 6),
        "attempt": attempt,
    }
    rate = result.cycles_per_second
    record["cycles_per_second"] = round(rate) if rate else None
    if result.ok:
        record["observation"] = result.observation
    if result.error is not None:
        record["error"] = result.error
    if worker_pid is not None:
        record["worker"] = worker_pid
    if cache_delta is not None:
        record["cache"] = cache_delta
    if spec.meta:
        record["meta"] = spec.meta
    return record


def execute_job(spec: JobSpec, job_id: int, *,
                attempt: int = 1) -> Dict[str, object]:
    """Run one job in this process and build its record (worker hot path;
    also the daemon's no-``fork`` fallback)."""
    from ..cuttlesim.cache import get_default_cache

    stats = get_default_cache().stats
    before = stats.snapshot()
    result = execute_trial(job_id, build_trial(spec))
    return job_record(spec, job_id, result, attempt=attempt,
                      worker_pid=os.getpid(), cache_delta=stats.since(before))


def worker_loop(conn) -> None:
    """Child entry point: serve job batches until ``("stop",)`` or EOF."""
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if not isinstance(message, tuple) or not message or \
                message[0] == "stop":
            break
        _, items = message
        for job_id, payload, attempt in items:
            try:
                spec = JobSpec.from_payload(payload, allow_pickle=True)
                record = execute_job(spec, job_id, attempt=attempt)
            except BaseException as exc:  # never let one job kill the loop
                record = {"schema": PROTOCOL, "job_id": job_id,
                          "status": "error", "attempt": attempt,
                          "worker": os.getpid(),
                          "error": {"type": type(exc).__name__,
                                    "message": str(exc)}}
            try:
                conn.send(("result", job_id, record))
            except (OSError, ValueError, TypeError):
                try:
                    slim = {k: v for k, v in record.items()
                            if k != "observation"}
                    slim["status"] = "error"
                    slim.setdefault("error", {
                        "type": "SerializationError",
                        "message": "observation could not be sent"})
                    conn.send(("result", job_id, slim))
                except OSError:
                    return
    try:
        conn.close()
    except OSError:
        pass


class ResidentWorker:
    """Parent-side handle on one worker slot: process + pipe + respawns.

    The *slot* (index) is stable; the process behind it is replaced by
    :meth:`respawn` after a crash or a timeout kill.  Respawning is
    bounded by the pool (see the daemon) so a poisoned environment can't
    fork-bomb the host.
    """

    def __init__(self, index: int, context=None) -> None:
        self.index = index
        self.context = context or multiprocessing.get_context("fork")
        self.respawns = -1    # first spawn is not a respawn
        self.conn = None
        self.process = None
        self.spawn()

    def spawn(self) -> None:
        self.respawns += 1
        self.conn, child = self.context.Pipe(duplex=True)
        self.process = self.context.Process(
            target=worker_loop, args=(child,),
            name=f"repro-serve-worker-{self.index}", daemon=True)
        self.process.start()
        child.close()

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def send_batch(self, items) -> None:
        self.conn.send(("jobs", items))

    def stop(self) -> None:
        """Ask the loop to exit; harmless if the process already died."""
        try:
            self.conn.send(("stop",))
        except (OSError, ValueError):
            pass

    def kill(self) -> None:
        if self.process is None:
            return
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(1.0)
            if self.process.is_alive():  # pragma: no cover - stubborn child
                self.process.kill()
                self.process.join()
        try:
            self.conn.close()
        except OSError:
            pass

    def join(self, timeout: Optional[float] = None) -> bool:
        """Wait for a clean exit; True when the process is gone."""
        if self.process is None:
            return True
        self.process.join(timeout)
        if self.process.is_alive():
            return False
        try:
            self.conn.close()
        except OSError:
            pass
        return True

    def respawn(self) -> None:
        self.kill()
        self.spawn()
