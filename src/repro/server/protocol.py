"""The ``repro-serve-v1`` wire protocol: newline-delimited JSON messages.

One message per line, UTF-8 JSON objects with a ``type`` field.  Client
requests and their server responses:

* ``{"type": "ping"}`` → ``{"type": "pong", "protocol": ...}``;
* ``{"type": "submit", "id": TAG?, "job": {...}}`` →
  ``{"type": "accepted", "job_id": N}`` immediately, then
  ``{"type": "result", "job_id": N, "record": {...}}`` when the job
  finishes.  Unhappy paths are *typed*, never silent: ``overloaded``
  (queue at capacity), ``draining`` (server is shutting down),
  ``error`` (validation failure).  ``id`` tags, when given, are echoed
  on every response so clients may pipeline submissions on one socket;
* ``{"type": "stats"}`` → ``{"type": "stats", "metrics": {...},
  "text": "<prometheus exposition>"}``;
* ``{"type": "shutdown", "drain": true|false}`` →
  ``{"type": "shutting_down"}``; ``drain=true`` finishes in-flight and
  queued jobs first, ``drain=false`` aborts them.

The per-job ``record`` is the ``repro-serve-v1`` BENCH JSON payload
(schema, design/opt/seed, status, cycles, cycles/second, observation,
per-job model-cache delta, worker pid, attempt count).
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

PROTOCOL = "repro-serve-v1"

#: Upper bounds enforced on submitted jobs (a daemon serving a shared
#: socket must not let one request monopolize a worker forever).
MAX_CYCLES = 50_000_000
MAX_PRIORITY = 1_000_000
MAX_LINE = 16 * 1024 * 1024


class ProtocolError(ValueError):
    """A request that is syntactically JSON but semantically invalid."""


def default_socket_path() -> str:
    """Per-user default Unix socket path for ``repro serve``."""
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return os.path.join(tempfile.gettempdir(), f"repro-serve-{uid}.sock")


def parse_address(value) -> Tuple[str, object]:
    """Normalize an address to ``("unix", path)`` or ``("tcp", (host, port))``.

    Accepts ``unix:/path``, ``tcp:host:port``, a bare ``host:port``, a
    filesystem path, or an already-split ``(host, port)`` tuple.
    """
    if isinstance(value, tuple):
        host, port = value
        return ("tcp", (host, int(port)))
    if not isinstance(value, str) or not value:
        raise ProtocolError(f"bad address {value!r}")
    if value.startswith("unix:"):
        return ("unix", value[len("unix:"):])
    if value.startswith("tcp:"):
        value = value[len("tcp:"):]
        host, _, port = value.rpartition(":")
        if not host or not port.isdigit():
            raise ProtocolError(f"bad tcp address {value!r}")
        return ("tcp", (host, int(port)))
    if os.sep in value or value.startswith("."):
        return ("unix", value)
    host, _, port = value.rpartition(":")
    if host and port.isdigit():
        return ("tcp", (host, int(port)))
    return ("unix", value)


def encode(message: Dict[str, object]) -> bytes:
    """One wire frame: compact JSON plus the line terminator."""
    return json.dumps(message, separators=(",", ":"),
                      default=repr).encode() + b"\n"


def decode(line: bytes) -> Dict[str, object]:
    try:
        message = json.loads(line.decode())
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from None
    if not isinstance(message, dict) or not isinstance(message.get("type"),
                                                       str):
        raise ProtocolError("frame must be a JSON object with a 'type'")
    return message


def _require(condition: bool, what: str) -> None:
    if not condition:
        raise ProtocolError(what)


@dataclass
class JobSpec:
    """A validated simulation job, as carried by ``submit`` requests.

    ``seed=None`` runs the design's in-order schedule for ``cycles``
    cycles; an integer seed runs a per-cycle randomized schedule (the
    case-study-2 workload) seeded deterministically, so equal specs give
    byte-identical observations on any worker.  ``design_pickle`` (a
    base64 pickle of a :class:`~repro.koika.design.Design`) is only
    honored when the daemon was started with ``allow_pickle`` — never
    accept pickles from sockets you do not trust.

    ``mode="fuzz"`` carries a fuzz-campaign work unit instead of a plain
    simulation: ``fuzz`` is a :class:`repro.fuzz.executor.SeedJob` recipe
    dict, and the job's observation is the executor's JSON outcome record
    (so ``repro fuzz run --server`` results are byte-identical to serial
    campaign results).
    """

    design: str
    opt: int = 5
    cycles: int = 1_000
    seed: Optional[int] = None
    priority: int = 0
    timeout: Optional[float] = None
    program: Optional[str] = None
    program_arg: int = 100
    design_pickle: Optional[str] = None
    mode: str = "sim"
    fuzz: Optional[Dict[str, object]] = None
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def compile_key(self) -> Tuple[str, int, object]:
        """Jobs sharing this key reuse one compiled model: batch them."""
        if self.mode == "fuzz":
            # Every fuzz job compiles its own generated design; batching
            # only pays off for byte-identical recipes.
            return (self.design, -1, repr(sorted((self.fuzz or {}).items())))
        return (self.design, self.opt, self.seed is not None)

    @classmethod
    def from_payload(cls, payload, *, allow_pickle: bool = False) -> "JobSpec":
        _require(isinstance(payload, dict), "submit needs a 'job' object")
        known = {"design", "opt", "cycles", "seed", "priority", "timeout",
                 "program", "program_arg", "design_pickle", "mode", "fuzz",
                 "meta"}
        unknown = set(payload) - known
        _require(not unknown, f"unknown job fields: {sorted(unknown)}")
        design = payload.get("design")
        _require(isinstance(design, str) and design != "",
                 "job.design must be a non-empty string")
        opt = payload.get("opt", 5)
        _require(isinstance(opt, int) and 0 <= opt <= 5,
                 "job.opt must be an integer in 0..5")
        cycles = payload.get("cycles", 1_000)
        _require(isinstance(cycles, int) and 1 <= cycles <= MAX_CYCLES,
                 f"job.cycles must be an integer in 1..{MAX_CYCLES}")
        seed = payload.get("seed")
        _require(seed is None or isinstance(seed, int),
                 "job.seed must be an integer or null")
        priority = payload.get("priority", 0)
        _require(isinstance(priority, int)
                 and abs(priority) <= MAX_PRIORITY,
                 "job.priority must be a small integer")
        timeout = payload.get("timeout")
        _require(timeout is None
                 or (isinstance(timeout, (int, float)) and timeout > 0),
                 "job.timeout must be a positive number of seconds")
        program = payload.get("program")
        _require(program is None or isinstance(program, str),
                 "job.program must be a string")
        program_arg = payload.get("program_arg", 100)
        _require(isinstance(program_arg, int), "job.program_arg: integer")
        design_pickle = payload.get("design_pickle")
        if design_pickle is not None:
            _require(allow_pickle,
                     "design_pickle rejected: daemon runs without "
                     "--allow-pickle")
            _require(isinstance(design_pickle, str),
                     "job.design_pickle must be a base64 string")
        mode = payload.get("mode", "sim")
        _require(mode in ("sim", "fuzz"),
                 "job.mode must be 'sim' or 'fuzz'")
        fuzz = payload.get("fuzz")
        if mode == "fuzz":
            _require(isinstance(fuzz, dict)
                     and isinstance(fuzz.get("seed"), int),
                 "fuzz jobs need a job.fuzz object with an integer seed")
        else:
            _require(fuzz is None, "job.fuzz requires job.mode = 'fuzz'")
        meta = payload.get("meta", {})
        _require(isinstance(meta, dict), "job.meta must be an object")
        return cls(design=design, opt=opt, cycles=cycles, seed=seed,
                   priority=priority,
                   timeout=float(timeout) if timeout is not None else None,
                   program=program, program_arg=program_arg,
                   design_pickle=design_pickle, mode=mode,
                   fuzz=dict(fuzz) if fuzz is not None else None,
                   meta=dict(meta))

    def as_payload(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "design": self.design, "opt": self.opt, "cycles": self.cycles,
            "priority": self.priority, "program_arg": self.program_arg,
        }
        if self.seed is not None:
            payload["seed"] = self.seed
        if self.timeout is not None:
            payload["timeout"] = self.timeout
        if self.program is not None:
            payload["program"] = self.program
        if self.design_pickle is not None:
            payload["design_pickle"] = self.design_pickle
        if self.mode != "sim":
            payload["mode"] = self.mode
        if self.fuzz is not None:
            payload["fuzz"] = self.fuzz
        if self.meta:
            payload["meta"] = self.meta
        return payload
