"""Cuttlesim's mid-level IR: the contract between lowering and backends.

Kôika rule bodies arrive as expression trees (``repro.koika.ast``); code
generators used to walk those trees directly, splicing Python expression
*strings* into per-optimization templates.  Every miscompile the project
has fixed (operand re-evaluation, debug-hook re-splice, conflict-checked
writes skipping external calls) came from that splicing: a string pasted
into two template slots is *evaluated* twice, and a string pasted after a
mutation observes the wrong state.

This module defines the replacement: a small three-address IR where

* every operator result is a :class:`Temp` **bound exactly once** (by one
  :class:`Bind`/:class:`SRead` statement) and consumed at most once, so
  "value spliced into two sites" is unrepresentable by construction;
* reads, writes, guards and aborts are explicit statements
  (:class:`SRead`/:class:`SWrite`/:class:`SIf`/:class:`SAbort`) carrying
  the policy bits the optimization passes refine (``check``, ``track``,
  ``effects_before``);
* no node holds a Python expression string — backends (the scalar emitter
  in ``codegen.py`` and the batched lane emitters in ``batch.py``) decide
  spelling, fusion and materialization themselves.

The passes in :mod:`repro.cuttlesim.passes` transform modules of this IR;
:func:`format_module` renders it for the ``--stop-after`` debug flag.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

# ----------------------------------------------------------------------
# Values.
# ----------------------------------------------------------------------


class Value:
    """An operand: a temp, a constant, or a named Python local."""

    __slots__ = ()


class Temp(Value):
    """The result of exactly one defining statement (SSA-style)."""

    __slots__ = ("id",)

    def __init__(self, id: int) -> None:
        self.id = id

    def __repr__(self) -> str:
        return f"%{self.id}"


class IConst(Value):
    """An integer literal (already masked to its width by the typechecker)."""

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        self.value = value

    def __repr__(self) -> str:
        return str(self.value) if -10 < self.value < 10 else hex(self.value)


class LocalRef(Value):
    """A named, mutable Python local (Kôika ``Let``/``Assign`` variables
    and design-function arguments).  Unlike temps these may be reassigned
    (:class:`SSet`), so backends treat assignments as barriers."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return self.name


# ----------------------------------------------------------------------
# Operators (right-hand sides of Bind).  Pure unless noted.
# ----------------------------------------------------------------------


class Op:
    __slots__ = ()

    #: Impure ops must be materialized at their binding site, in order.
    impure = False


class IBin(Op):
    """Binary operator; ``op`` is one of ``repro.koika.ast.BINOPS``."""

    __slots__ = ("op", "a", "b", "width", "a_width", "b_width")

    def __init__(self, op: str, a: Value, b: Value, width: int,
                 a_width: int, b_width: int) -> None:
        self.op = op
        self.a = a
        self.b = b
        self.width = width        # result width in bits
        self.a_width = a_width
        self.b_width = b_width

    def operands(self) -> Tuple[Value, ...]:
        return (self.a, self.b)

    def __repr__(self) -> str:
        return f"{self.op}:{self.width} {self.a!r}, {self.b!r}"


class IUn(Op):
    """Unary operator (``not``/``neg``/``zextl``/``sextl``/``slice``).

    ``param`` is the target width for the extensions and an
    ``(offset, width)`` pair for ``slice`` — struct field projections
    lower to ``slice`` so backends never see field names."""

    __slots__ = ("op", "a", "width", "a_width", "param")

    def __init__(self, op: str, a: Value, width: int, a_width: int,
                 param: object = None) -> None:
        self.op = op
        self.a = a
        self.width = width
        self.a_width = a_width
        self.param = param

    def operands(self) -> Tuple[Value, ...]:
        return (self.a,)

    def __repr__(self) -> str:
        extra = f"[{self.param}]" if self.param is not None else ""
        return f"{self.op}{extra}:{self.width} {self.a!r}"


class ISubst(Op):
    """Replace one field of a struct value (``offset``/``width`` resolved
    at lowering time; ``struct_width`` is the full value's width)."""

    __slots__ = ("a", "value", "offset", "width", "struct_width")

    def __init__(self, a: Value, value: Value, offset: int, width: int,
                 struct_width: int) -> None:
        self.a = a
        self.value = value
        self.offset = offset
        self.width = width
        self.struct_width = struct_width

    def operands(self) -> Tuple[Value, ...]:
        return (self.a, self.value)

    def __repr__(self) -> str:
        return (f"subst[{self.offset}+:{self.width}] "
                f"{self.a!r}, {self.value!r}")


class ICall(Op):
    """Call of a pure design function (emitted as ``fn_<name>``)."""

    __slots__ = ("fn", "args")

    def __init__(self, fn: str, args: Sequence[Value]) -> None:
        self.fn = fn
        self.args = tuple(args)

    def operands(self) -> Tuple[Value, ...]:
        return self.args

    def __repr__(self) -> str:
        return f"call {self.fn}({', '.join(map(repr, self.args))})"


class IExt(Op):
    """External function call — impure: the environment observes exactly
    one call, in program order, so backends emit it at the binding site
    (never deferred, never duplicated)."""

    __slots__ = ("fn", "a", "width")

    impure = True

    def __init__(self, fn: str, a: Value, width: int) -> None:
        self.fn = fn
        self.a = a
        self.width = width

    def operands(self) -> Tuple[Value, ...]:
        return (self.a,)

    def __repr__(self) -> str:
        return f"ext {self.fn}({self.a!r}):{self.width}"


# ----------------------------------------------------------------------
# Statements.
# ----------------------------------------------------------------------


class Stmt:
    __slots__ = ("uid",)

    def __init__(self, uid: Optional[int]) -> None:
        self.uid = uid


class Bind(Stmt):
    """Bind ``temp`` to the result of ``op`` (the only definition)."""

    __slots__ = ("temp", "op")

    def __init__(self, temp: Temp, op: Op, uid: Optional[int]) -> None:
        super().__init__(uid)
        self.temp = temp
        self.op = op

    def __repr__(self) -> str:
        return f"{self.temp!r} = {self.op!r}"


class SSet(Stmt):
    """Assign ``value`` to a local (``Let``/``Assign``) or to a branch
    join temp (the final statement of each :class:`SIf` arm).  ``init``
    is True when this introduces the local (a ``Let``), False when it
    reassigns an existing one (an ``Assign``) — the batched vector
    backend must mask reassignments under a branch conjunction but not
    initial bindings."""

    __slots__ = ("target", "value", "init")

    def __init__(self, target: Union[Temp, LocalRef], value: Value,
                 uid: Optional[int], init: bool = False) -> None:
        super().__init__(uid)
        self.target = target
        self.value = value
        self.init = init

    def __repr__(self) -> str:
        eq = ":=" if self.init else "="
        return f"{self.target!r} {eq} {self.value!r}"


class SRead(Stmt):
    """Read a register port into ``temp``.

    ``check`` — emit the conflict check (may fail the rule);
    ``track`` — record the read in the log/flag state.
    Both default True; the O5 classification pass and the read-check
    deduplication pass clear them where the static analysis proves them
    unnecessary.  ``effects_before`` is True unless the early-fail pass
    proves no effect precedes this statement (so a failure needs no
    rollback)."""

    __slots__ = ("temp", "reg", "port", "check", "track", "effects_before")

    def __init__(self, temp: Temp, reg: str, port: int, uid: int,
                 check: bool = True, track: bool = True,
                 effects_before: bool = True) -> None:
        super().__init__(uid)
        self.temp = temp
        self.reg = reg
        self.port = port
        self.check = check
        self.track = track
        self.effects_before = effects_before

    def __repr__(self) -> str:
        bits = "".join(b for b, on in (("c", self.check), ("t", self.track))
                       if on)
        return (f"{self.temp!r} = rd{self.port}({self.reg})"
                f"{('.' + bits) if bits else ''}")


class SWrite(Stmt):
    """Write ``value`` to a register port.  Flags as for :class:`SRead`.
    The value operand is evaluated *before* the conflict check (the
    reference interpreter's order) — backends must materialize impure
    values ahead of the check, which the bind-exactly-once discipline
    gives them for free."""

    __slots__ = ("reg", "port", "value", "check", "track", "effects_before")

    def __init__(self, reg: str, port: int, value: Value, uid: int,
                 check: bool = True, track: bool = True,
                 effects_before: bool = True) -> None:
        super().__init__(uid)
        self.reg = reg
        self.port = port
        self.value = value
        self.check = check
        self.track = track
        self.effects_before = effects_before

    def __repr__(self) -> str:
        bits = "".join(b for b, on in (("c", self.check), ("t", self.track))
                       if on)
        return (f"wr{self.port}({self.reg}, {self.value!r})"
                f"{('.' + bits) if bits else ''}")


class SAbort(Stmt):
    """Explicit rule failure (Kôika ``fail``/failed guard)."""

    __slots__ = ("effects_before",)

    def __init__(self, uid: int, effects_before: bool = True) -> None:
        super().__init__(uid)
        self.effects_before = effects_before

    def __repr__(self) -> str:
        return "abort" + ("" if self.effects_before else ".early")


class SIf(Stmt):
    """Structured conditional.  When the If produces a value, ``result``
    names the join temp and each arm's final statement is an
    :class:`SSet` to it; unit-valued or discarded Ifs have
    ``result=None``.  ``orelse`` is None when the else arm is trivial."""

    __slots__ = ("cond", "then", "orelse", "result")

    def __init__(self, cond: Value, then: List[Stmt],
                 orelse: Optional[List[Stmt]], uid: int,
                 result: Optional[Temp] = None) -> None:
        super().__init__(uid)
        self.cond = cond
        self.then = then
        self.orelse = orelse
        self.result = result

    def __repr__(self) -> str:
        res = f"{self.result!r} = " if self.result is not None else ""
        return f"{res}if {self.cond!r} ..."


# ----------------------------------------------------------------------
# Containers.
# ----------------------------------------------------------------------


class RuleIR:
    """One rule's lowered body."""

    __slots__ = ("name", "body", "n_temps")

    def __init__(self, name: str, body: List[Stmt], n_temps: int) -> None:
        self.name = name
        self.body = body
        self.n_temps = n_temps


class FnIR:
    """A pure design function: body statements plus the result value."""

    __slots__ = ("name", "args", "body", "result", "n_temps")

    def __init__(self, name: str, args: List[str], body: List[Stmt],
                 result: Value, n_temps: int) -> None:
        self.name = name
        self.args = args          # python argument names (``v_<name>``)
        self.body = body
        self.result = result
        self.n_temps = n_temps


class ModuleIR:
    """A whole design lowered: functions, rules, and the pass-refined
    compilation policy (log layout, rollback mode, analysis results)."""

    __slots__ = ("design", "opt", "layout", "reset_on_failure", "analysis",
                 "fns", "rules", "applied")

    def __init__(self, design, opt: int) -> None:
        self.design = design
        self.opt = opt
        #: Storage layout the emitter instantiates: ``interleaved`` (O0),
        #: ``rwsets`` (O1), ``accumulated`` (O2/O3), ``merged`` (O4) or
        #: ``classified`` (O5).  Layout passes advance this.
        self.layout = "interleaved"
        self.reset_on_failure = False
        self.analysis = None
        self.fns: List[FnIR] = []
        self.rules: List[RuleIR] = []
        #: Names of the passes already run (in order), for dumps.
        self.applied: List[str] = []


# ----------------------------------------------------------------------
# Traversal helpers.
# ----------------------------------------------------------------------


def stmt_operands(stmt: Stmt) -> Tuple[Value, ...]:
    """The values a statement consumes (not including nested blocks)."""
    if isinstance(stmt, Bind):
        return stmt.op.operands()
    if isinstance(stmt, SSet):
        return (stmt.value,)
    if isinstance(stmt, SWrite):
        return (stmt.value,)
    if isinstance(stmt, SIf):
        return (stmt.cond,)
    return ()


def walk_stmts(stmts: Iterable[Stmt]) -> Iterator[Stmt]:
    """Yield every statement, descending into SIf arms, in program order."""
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, SIf):
            yield from walk_stmts(stmt.then)
            if stmt.orelse is not None:
                yield from walk_stmts(stmt.orelse)


def count_uses(stmts: Iterable[Stmt],
               extra: Sequence[Value] = ()) -> Dict[int, int]:
    """Count how many times each temp is consumed.  Lowering produces at
    most one use per temp (the tree structure of the source); backends
    materialize any temp whose count exceeds one, so the invariant is
    enforced rather than assumed."""
    uses: Dict[int, int] = {}
    for stmt in walk_stmts(stmts):
        for value in stmt_operands(stmt):
            if isinstance(value, Temp):
                uses[value.id] = uses.get(value.id, 0) + 1
    for value in extra:
        if isinstance(value, Temp):
            uses[value.id] = uses.get(value.id, 0) + 1
    return uses


# ----------------------------------------------------------------------
# Pretty printer (the --stop-after dump format).
# ----------------------------------------------------------------------


def _format_stmts(stmts: Sequence[Stmt], indent: int,
                  lines: List[str]) -> None:
    pad = "  " * indent
    for stmt in stmts:
        if isinstance(stmt, SIf):
            res = f"{stmt.result!r} = " if stmt.result is not None else ""
            lines.append(f"{pad}{res}if {stmt.cond!r}:")
            _format_stmts(stmt.then, indent + 1, lines)
            if stmt.orelse is not None:
                lines.append(f"{pad}else:")
                _format_stmts(stmt.orelse, indent + 1, lines)
        else:
            lines.append(f"{pad}{stmt!r}")
        if not isinstance(stmt, SIf) and isinstance(stmt, (SRead, SWrite,
                                                           SAbort)):
            if not stmt.effects_before:
                lines[-1] += "  ; no-effects-yet"


def format_module(module: ModuleIR) -> str:
    """Render a module for human inspection (``--stop-after`` dumps)."""
    lines: List[str] = []
    lines.append(f"module {module.design.name!r} (target O{module.opt})")
    lines.append(f"  layout = {module.layout}"
                 f"{', reset-on-failure' if module.reset_on_failure else ''}")
    lines.append(f"  passes = [{', '.join(module.applied)}]")
    if module.analysis is not None:
        lines.append(f"  analysis: {module.analysis.summary()}")
    for fn in module.fns:
        lines.append("")
        lines.append(f"fn {fn.name}({', '.join(fn.args)}):")
        _format_stmts(fn.body, 1, lines)
        lines.append(f"  return {fn.result!r}")
    for rule in module.rules:
        lines.append("")
        lines.append(f"rule {rule.name}:")
        _format_stmts(rule.body, 1, lines)
    return "\n".join(lines) + "\n"
