"""Runtime support for generated Cuttlesim models.

A compiled design is a generated Python class deriving from
:class:`ModelBase`.  The generated subclass provides:

* ``REG_NAMES`` / ``REG_IDS`` / ``REG_INIT`` — register tables;
* ``reset()`` — (re)initialize logs and state;
* ``_cycle()`` — one cycle in scheduler order (the fast path);
* ``_run_rule(name)`` helpers via ``rule_<name>`` methods returning bool;
* ``_get_reg(i)`` / ``_set_reg(i, value)`` — state accessors (each
  optimization level stores register values differently);
* ``_snapshot()`` / ``_restore(s)`` — full model state, including logs
  (enables the paper's "mid-cycle snapshots" and reverse debugging).

Everything user-facing (peek/poke/run) lives here so the generated code
stays small and readable — it is meant to be *read* (paper §2.3).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..errors import SimulationError
from ..harness.env import Environment

#: Debug-hook event kinds (debug=True compilations call
#: ``self._hook(kind, ...)`` at these points).
EV_RULE = "rule"
EV_READ = "read"
EV_WRITE = "write"
EV_FAIL = "fail"
EV_COMMIT = "commit"


class ModelBase:
    """Base class of all generated Cuttlesim models."""

    # Filled in by the generated subclass / the compiler:
    DESIGN_NAME: str = "?"
    OPT_LEVEL: int = -1
    REG_NAMES: Sequence[str] = ()
    REG_INIT: Sequence[int] = ()
    REG_IDS: Dict[str, int] = {}
    RULE_NAMES: Sequence[str] = ()
    SOURCE: str = ""
    #: Coverage blocks: (block_id, rule, start_line, end_line, kind, ast_uid).
    COV_BLOCKS: Sequence[tuple] = ()
    N_COV: int = 0

    def __init__(self, env: Optional[Environment] = None):
        self._env = env or Environment()
        self.cycle = 0
        self._cov: List[int] = [0] * self.N_COV
        self._hook: Optional[Callable] = None
        self._bind_extfuns()
        self.reset()

    def _bind_extfuns(self) -> None:
        """Generated subclasses override to prebind external functions."""

    @property
    def backend_name(self) -> str:
        return f"cuttlesim-O{self.OPT_LEVEL}"

    # -- SimHandle ----------------------------------------------------------
    def peek(self, register: str) -> int:
        index = self.REG_IDS.get(register)
        if index is None:
            raise SimulationError(f"unknown register {register!r}")
        return int(self._get_reg(index))

    def poke(self, register: str, value: int) -> None:
        index = self.REG_IDS.get(register)
        if index is None:
            raise SimulationError(f"unknown register {register!r}")
        self._set_reg(index, int(value))

    # -- execution -----------------------------------------------------------
    def run_cycle(self, order: Optional[Sequence[str]] = None):
        """Run one cycle.  ``order`` overrides the compiled scheduler with a
        list of rule names (used by scheduler randomization, case study 2).

        Returns the list of rule names that committed.
        """
        if order is None:
            return self._cycle_report()
        methods = []
        for name in order:
            method = getattr(self, f"rule_{name}", None)
            if method is None:
                raise SimulationError(f"unknown rule {name!r}")
            methods.append((name, method))
        return self._cycle_ordered(methods)

    def run(self, cycles: int) -> None:
        for _ in range(cycles):
            self._cycle()

    def run_until(self, predicate: Callable[["ModelBase"], bool],
                  max_cycles: int = 10_000_000) -> int:
        for elapsed in range(max_cycles):
            if predicate(self):
                return elapsed
            self._cycle()
        raise SimulationError(f"predicate not reached within {max_cycles} cycles")

    # -- state (generated subclasses implement) --------------------------------
    def reset(self) -> None:
        raise NotImplementedError

    def _cycle(self):
        raise NotImplementedError

    def _cycle_report(self):
        raise NotImplementedError

    def _cycle_ordered(self, methods):
        raise NotImplementedError

    def _get_reg(self, index: int) -> int:
        raise NotImplementedError

    def _set_reg(self, index: int, value: int) -> None:
        raise NotImplementedError

    def _snapshot(self):
        raise NotImplementedError

    def _restore(self, snapshot) -> None:
        raise NotImplementedError

    # -- tooling ---------------------------------------------------------------
    def snapshot(self):
        """Full model snapshot (registers, logs, cycle counter)."""
        return (self.cycle, self._snapshot())

    def restore(self, snapshot) -> None:
        self.cycle, inner = snapshot
        self._restore(inner)

    def set_hook(self, hook: Optional[Callable]) -> None:
        """Install a debug hook (only effective on debug=True models)."""
        self._hook = hook

    def coverage_counts(self) -> List[int]:
        return list(self._cov)

    def reset_coverage(self) -> None:
        for i in range(len(self._cov)):
            self._cov[i] = 0

    def state_dict(self) -> Dict[str, int]:
        return {name: int(self._get_reg(i)) for i, name in enumerate(self.REG_NAMES)}
