"""Runtime support for generated Cuttlesim models.

A compiled design is a generated Python class deriving from
:class:`ModelBase`.  The generated subclass provides:

* ``REG_NAMES`` / ``REG_IDS`` / ``REG_INIT`` — register tables;
* ``reset()`` — (re)initialize logs and state;
* ``_cycle()`` — one cycle in scheduler order (the fast path);
* ``_run_rule(name)`` helpers via ``rule_<name>`` methods returning bool;
* ``_get_reg(i)`` / ``_set_reg(i, value)`` — state accessors (each
  optimization level stores register values differently);
* ``_snapshot()`` / ``_restore(s)`` — full model state, including logs
  (enables the paper's "mid-cycle snapshots" and reverse debugging).

Everything user-facing (peek/poke/run) lives here so the generated code
stays small and readable — it is meant to be *read* (paper §2.3).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..errors import SimulationError
from ..harness.env import Environment

#: Debug-hook event kinds (debug=True compilations call
#: ``self._hook(kind, ...)`` at these points).
EV_RULE = "rule"
EV_READ = "read"
EV_WRITE = "write"
EV_FAIL = "fail"
EV_COMMIT = "commit"


class ModelBase:
    """Base class of all generated Cuttlesim models."""

    # Filled in by the generated subclass / the compiler:
    DESIGN_NAME: str = "?"
    OPT_LEVEL: int = -1
    REG_NAMES: Sequence[str] = ()
    REG_INIT: Sequence[int] = ()
    REG_IDS: Dict[str, int] = {}
    RULE_NAMES: Sequence[str] = ()
    SOURCE: str = ""
    #: Coverage blocks: (block_id, rule, start_line, end_line, kind, ast_uid).
    COV_BLOCKS: Sequence[tuple] = ()
    N_COV: int = 0

    def __init__(self, env: Optional[Environment] = None):
        self._env = env or Environment()
        self.cycle = 0
        self._cov: List[int] = [0] * self.N_COV
        self._hook: Optional[Callable] = None
        self._bind_extfuns()
        self.reset()

    def _bind_extfuns(self) -> None:
        """Generated subclasses override to prebind external functions."""

    @property
    def backend_name(self) -> str:
        return f"cuttlesim-O{self.OPT_LEVEL}"

    # -- SimHandle ----------------------------------------------------------
    def peek(self, register: str) -> int:
        index = self.REG_IDS.get(register)
        if index is None:
            raise SimulationError(f"unknown register {register!r}")
        return int(self._get_reg(index))

    def poke(self, register: str, value: int) -> None:
        index = self.REG_IDS.get(register)
        if index is None:
            raise SimulationError(f"unknown register {register!r}")
        self._set_reg(index, int(value))

    # -- execution -----------------------------------------------------------
    def run_cycle(self, order: Optional[Sequence[str]] = None):
        """Run one cycle.  ``order`` overrides the compiled scheduler with a
        list of rule names (used by scheduler randomization, case study 2).

        Returns the list of rule names that committed.
        """
        if order is None:
            return self._cycle_report()
        methods = []
        for name in order:
            method = getattr(self, f"rule_{name}", None)
            if method is None:
                raise SimulationError(f"unknown rule {name!r}")
            methods.append((name, method))
        return self._cycle_ordered(methods)

    def run(self, cycles: int) -> None:
        for _ in range(cycles):
            self._cycle()

    def run_until(self, predicate: Callable[["ModelBase"], bool],
                  max_cycles: int = 10_000_000) -> int:
        for elapsed in range(max_cycles):
            if predicate(self):
                return elapsed
            self._cycle()
        raise SimulationError(f"predicate not reached within {max_cycles} cycles")

    # -- state (generated subclasses implement) --------------------------------
    def reset(self) -> None:
        raise NotImplementedError

    def _cycle(self):
        raise NotImplementedError

    def _cycle_report(self):
        raise NotImplementedError

    def _cycle_ordered(self, methods):
        raise NotImplementedError

    def _get_reg(self, index: int) -> int:
        raise NotImplementedError

    def _set_reg(self, index: int, value: int) -> None:
        raise NotImplementedError

    def _snapshot(self):
        raise NotImplementedError

    def _restore(self, snapshot) -> None:
        raise NotImplementedError

    # -- tooling ---------------------------------------------------------------
    def snapshot(self):
        """Full model snapshot (registers, logs, cycle counter)."""
        return (self.cycle, self._snapshot())

    def restore(self, snapshot) -> None:
        self.cycle, inner = snapshot
        self._restore(inner)

    def set_hook(self, hook: Optional[Callable]) -> None:
        """Install a debug hook (only effective on debug=True models)."""
        self._hook = hook

    def coverage_counts(self) -> List[int]:
        return list(self._cov)

    def reset_coverage(self) -> None:
        for i in range(len(self._cov)):
            self._cov[i] = 0

    def state_dict(self) -> Dict[str, int]:
        return {name: int(self._get_reg(i)) for i, name in enumerate(self.REG_NAMES)}


class LaneView:
    """SimHandle facade over one lane of a batched model.

    Devices attached to a lane's environment see this object, so
    backend-agnostic peripherals (memories, testbench drivers) work
    unchanged under lockstep execution: they peek/poke their own lane
    between cycles and never observe the other lanes.
    """

    __slots__ = ("_model", "lane")

    def __init__(self, model: "BatchModelBase", lane: int):
        self._model = model
        self.lane = lane

    @property
    def cycle(self) -> int:
        return self._model.cycle

    def peek(self, register: str) -> int:
        return self._model.peek_lane(register, self.lane)

    def poke(self, register: str, value: int) -> None:
        self._model.poke_lane(register, self.lane, value)

    def state_dict(self) -> Dict[str, int]:
        return self._model.lane_state_dict(self.lane)


class BatchModelBase:
    """Base class of generated width-B lockstep models.

    One instance simulates ``BATCH`` independent trials of the same design
    in lockstep: registers are length-B lane vectors, each lane has its
    own :class:`Environment` (external calls and devices are per-lane
    observable effects), and ``run_cycle`` reports commits per lane.

    Construct with ``envs`` (a length-B sequence of environments) or an
    ``env_factory`` callable; both omitted builds B empty environments.
    Snapshot/restore is not supported — lanes are meant for bulk sweeps,
    not interactive debugging (use a scalar model for that).
    """

    # Filled in by the generated subclass / the compiler:
    DESIGN_NAME: str = "?"
    BATCH: int = 0
    BACKEND: str = "?"
    OPT_LEVEL: int = 2
    REG_NAMES: Sequence[str] = ()
    REG_INIT: Sequence[int] = ()
    REG_IDS: Dict[str, int] = {}
    REG_MASKS: Sequence[int] = ()
    RULE_NAMES: Sequence[str] = ()
    SOURCE: str = ""

    def __init__(self, envs: Optional[Sequence[Environment]] = None,
                 env_factory: Optional[Callable[[], Environment]] = None):
        if envs is not None:
            envs = list(envs)
            if len(envs) != self.BATCH:
                raise SimulationError(
                    f"batched model {self.DESIGN_NAME!r} has {self.BATCH} "
                    f"lanes but {len(envs)} environments were provided")
        else:
            factory = env_factory or Environment
            envs = [factory() for _ in range(self.BATCH)]
        self._envs = envs
        self._lanes = [LaneView(self, k) for k in range(self.BATCH)]
        self._hooks = any(env.devices for env in envs)
        self.cycle = 0
        self._bind_extfuns()
        self.reset()

    def _bind_extfuns(self) -> None:
        """Generated subclasses override to prebind per-lane extfuns."""

    @property
    def backend_name(self) -> str:
        suffix = "np" if self.BACKEND == "numpy" else "py"
        return f"cuttlesim-batch{self.BATCH}-{suffix}"

    def lanes(self) -> List[LaneView]:
        """Per-lane SimHandle views (what devices see)."""
        return list(self._lanes)

    # -- per-lane state access -------------------------------------------------
    def _reg_index(self, register: str) -> int:
        index = self.REG_IDS.get(register)
        if index is None:
            raise SimulationError(f"unknown register {register!r}")
        return index

    def peek_lane(self, register: str, lane: int) -> int:
        return int(self._S[self._reg_index(register)][lane])

    def poke_lane(self, register: str, lane: int, value: int) -> None:
        index = self._reg_index(register)
        self._S[index][lane] = int(value) & self.REG_MASKS[index]

    def peek(self, register: str) -> List[int]:
        """All lanes' committed values of ``register``."""
        row = self._S[self._reg_index(register)]
        return [int(row[k]) for k in range(self.BATCH)]

    def poke(self, register: str, value) -> None:
        """Set ``register`` in every lane: an int broadcasts, a sequence
        sets lanes elementwise."""
        index = self._reg_index(register)
        row = self._S[index]
        reg_mask = self.REG_MASKS[index]
        if isinstance(value, int):
            masked = value & reg_mask
            for k in range(self.BATCH):
                row[k] = masked
            return
        values = list(value)
        if len(values) != self.BATCH:
            raise SimulationError(
                f"poke of {register!r} got {len(values)} values for "
                f"{self.BATCH} lanes")
        for k, item in enumerate(values):
            row[k] = int(item) & reg_mask

    def lane_state_dict(self, lane: int) -> Dict[str, int]:
        return {name: int(self._S[i][lane])
                for i, name in enumerate(self.REG_NAMES)}

    def state_dict(self) -> Dict[str, List[int]]:
        """Register name -> per-lane value lists."""
        return {name: [int(self._S[i][k]) for k in range(self.BATCH)]
                for i, name in enumerate(self.REG_NAMES)}

    # -- execution -----------------------------------------------------------
    def run_cycle(self, order: Optional[Sequence[str]] = None) -> List[tuple]:
        """Run one lockstep cycle.  Returns one tuple of committed rule
        names per lane (index = lane)."""
        if order is None:
            return self._cycle_report()
        methods = []
        for name in order:
            method = getattr(self, f"rule_{name}", None)
            if method is None:
                raise SimulationError(f"unknown rule {name!r}")
            methods.append((name, method))
        return self._cycle_ordered(methods)

    def run(self, cycles: int) -> None:
        for _ in range(cycles):
            self._cycle()

    # -- hooks ---------------------------------------------------------------
    def _before_hooks(self) -> None:
        if not self._hooks:
            return
        for env, lane in zip(self._envs, self._lanes):
            env.before_cycle(lane)

    def _after_hooks(self) -> None:
        if not self._hooks:
            return
        for env, lane in zip(self._envs, self._lanes):
            env.after_cycle(lane)

    def _commit_tuples(self, masks,
                       names: Optional[Sequence[str]] = None) -> List[tuple]:
        rule_names = self.RULE_NAMES if names is None else names
        return [tuple(name for name, fired in zip(rule_names, masks)
                      if fired[k])
                for k in range(self.BATCH)]

    # -- state (generated subclasses implement) --------------------------------
    def reset(self) -> None:
        raise NotImplementedError

    def _cycle(self):
        raise NotImplementedError

    def _cycle_report(self):
        raise NotImplementedError

    def _cycle_ordered(self, methods):
        raise NotImplementedError

    # -- unsupported tooling ---------------------------------------------------
    def snapshot(self):
        raise SimulationError(
            "batched lockstep models do not support snapshot/restore; "
            "use a scalar compile_model() build for debugging")

    def restore(self, snapshot) -> None:
        raise SimulationError(
            "batched lockstep models do not support snapshot/restore; "
            "use a scalar compile_model() build for debugging")
