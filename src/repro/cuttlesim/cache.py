"""Content-addressed model cache: compile a design once, load it forever.

The paper's pitch is that compiled simulation is *cheap to rerun*; a sweep
service makes that literal only if reruns skip the compiler.  Every
``compile_model`` call normally re-runs static analysis, code emission and
``compile()``/``exec`` from scratch — this module memoizes the expensive
front half behind a stable content hash, in two layers:

* an **in-process LRU** of finished model classes (a repeat
  ``compile_model`` in the same process is a dict lookup);
* an **on-disk store** of the generated source plus its metadata tables,
  so fresh processes (sweep workers, repeat CLI invocations, CI shards)
  skip analysis + emission and only ``compile()``/``exec`` the stored
  text.

Keys are ``sha256`` over the canonical pretty-printed design (plus
register/extfun signature tables), the codegen flags that influence the
generated source, and :data:`repro.cuttlesim.codegen.CODEGEN_VERSION` —
so editing a design, changing a flag, or upgrading the emitter each miss
cleanly instead of replaying stale code.

Instrumented/debug builds are never cached: their metadata embeds AST-node
uids that only mean something for the exact design object in hand.

The default on-disk location is ``~/.cache/repro/models``, overridable
with the ``REPRO_MODEL_CACHE`` environment variable (set it to ``0``,
``off`` or the empty string to disable the disk layer of the shared
default cache).
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Optional, Tuple

from ..koika.design import Design
from ..koika.pretty import pretty_design
from .codegen import CODEGEN_VERSION, _Meta

#: On-disk entry format version (bump on layout changes).
_DISK_FORMAT = 1


def _pid_alive(pid: int) -> bool:
    """True if ``pid`` names a process this user can see/signal."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, owned by another user
        return True
    except OSError:  # pragma: no cover - e.g. platforms without kill(pid, 0)
        return False
    return True


def design_fingerprint(design: Design) -> str:
    """Stable content hash of a design, independent of object identity.

    Hashes the canonical pretty-printed text plus the signature tables the
    printer does not fully capture (register widths/initial values and
    external-function types), so two structurally identical designs built
    in different processes agree and any semantic edit disagrees.
    """
    if not design.finalized:
        design.finalize()
    hasher = hashlib.sha256()
    hasher.update(pretty_design(design).encode())
    for register in design.registers.values():
        hasher.update(
            f"|reg {register.name}:{register.typ!r}={register.init}".encode())
    for ext in design.extfuns.values():
        hasher.update(
            f"|ext {ext.name}:{ext.arg_type!r}->{ext.ret_type!r}".encode())
    hasher.update(f"|sched {'|>'.join(design.scheduler)}".encode())
    return hasher.hexdigest()


class CacheStats:
    """Hit/miss counters, reported in fleet JSON reports."""

    def __init__(self) -> None:
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    def as_dict(self) -> Dict[str, int]:
        return {"memory_hits": self.memory_hits, "disk_hits": self.disk_hits,
                "hits": self.hits, "misses": self.misses}

    def snapshot(self) -> Dict[str, int]:
        """A point-in-time copy of the counters (pair with :meth:`since`)."""
        return self.as_dict()

    def since(self, baseline: Dict[str, int]) -> Dict[str, int]:
        """Counter deltas relative to an earlier :meth:`snapshot`.

        Long-lived processes (the ``repro serve`` workers) report the
        hits/misses *each job* contributed, not lifetime totals, so an
        aggregator can sum deltas from many workers without double
        counting."""
        current = self.as_dict()
        return {key: current[key] - baseline.get(key, 0) for key in current}

    def __repr__(self) -> str:
        return (f"CacheStats(memory={self.memory_hits}, "
                f"disk={self.disk_hits}, misses={self.misses})")


class ModelCache:
    """Two-layer (memory LRU + on-disk) content-addressed model cache.

    ``path=None`` disables the disk layer (memory-only cache).  The class
    is safe to share across threads; worker *processes* each get their own
    memory layer but share the disk directory, which is what makes sweep
    fleets warm-start.
    """

    def __init__(self, path: Optional[os.PathLike] = None,
                 memory_slots: int = 64):
        self.path = Path(path) if path is not None else None
        self.memory_slots = memory_slots
        self.stats = CacheStats()
        self._classes: "OrderedDict[str, type]" = OrderedDict()
        self._lock = threading.Lock()
        if self.path is not None:
            self.path.mkdir(parents=True, exist_ok=True)
            self._sweep_stale_tmp()

    def _sweep_stale_tmp(self) -> None:
        """Remove ``*.tmp.<pid>`` leftovers from writers that died between
        ``write_text`` and ``os.replace``.  Files belonging to a live
        process are left alone (it may still be mid-write); everything
        else is an orphan no future rename will ever consume."""
        if self.path is None:
            return
        for orphan in self.path.glob("*.tmp.*"):
            pid = orphan.suffix.lstrip(".")
            if pid.isdigit() and _pid_alive(int(pid)):
                continue
            try:
                orphan.unlink()
            except OSError:
                pass

    # -- keys -----------------------------------------------------------------
    def key_for(self, design: Design, *, opt: int, order_independent: bool,
                simplify: bool, inline_rules, host_optimize: int,
                batch: int = 0, batch_backend: str = "",
                shard: str = "") -> str:
        """Cache key for one (design, compile-flags) combination.

        ``host_optimize`` only affects the host ``compile()`` step, but it
        is keyed anyway so the class layer never conflates two builds.
        ``batch``/``batch_backend`` are nonzero/nonempty for batched
        lockstep compiles; they fold the lane width, lane backend and the
        batch emitter version into the key, so scalar and batched builds
        of the same design coexist and a batch emitter upgrade misses
        cleanly.  ``shard`` is nonempty for shard sub-design compiles —
        it carries the shard index, partitioner version and partition
        content hash (see :mod:`repro.shard`), so a shard model never
        collides with a whole-design model of the same fingerprint and a
        partitioner change misses cleanly.

        The key also embeds the *pass-list fingerprint* (pass names and
        versions, :func:`~.passes.pipeline_fingerprint`): reordering the
        pipeline or bumping one pass's version misses cleanly without a
        global ``CODEGEN_VERSION`` bump.
        """
        from .passes import batch_pipeline, pipeline_fingerprint, pipeline_for

        pipeline = batch_pipeline() if batch else pipeline_for(opt)
        flags = (f"O{opt};oi={int(bool(order_independent))}"
                 f";simp={int(bool(simplify))};inline={inline_rules!r}"
                 f";host={host_optimize};cg={CODEGEN_VERSION}"
                 f";pl={pipeline_fingerprint(pipeline)}")
        if batch:
            from .batch import BATCH_CODEGEN_VERSION

            flags += (f";batch={int(batch)};bk={batch_backend}"
                      f";bcg={BATCH_CODEGEN_VERSION}")
        if shard:
            flags += f";shard={shard}"
        return hashlib.sha256(
            f"{design_fingerprint(design)};{flags}".encode()).hexdigest()

    # -- memory layer ---------------------------------------------------------
    def lookup_class(self, key: str) -> Optional[type]:
        with self._lock:
            cls = self._classes.get(key)
            if cls is None:
                return None
            self._classes.move_to_end(key)
            self.stats.memory_hits += 1
            return cls

    def store_class(self, key: str, cls: type) -> None:
        with self._lock:
            self._classes[key] = cls
            self._classes.move_to_end(key)
            while len(self._classes) > self.memory_slots:
                # Dropping the strong reference lets the class (and its
                # linecache entry, via the finalizer) be collected.
                self._classes.popitem(last=False)

    # -- disk layer -----------------------------------------------------------
    def _entry_path(self, key: str) -> Optional[Path]:
        if self.path is None:
            return None
        return self.path / f"{key}.json"

    def lookup_source(self, key: str) -> Optional[Tuple[str, _Meta]]:
        """Load (source, meta) from disk; counts a miss when absent."""
        entry_path = self._entry_path(key)
        payload = None
        if entry_path is not None and entry_path.exists():
            try:
                payload = json.loads(entry_path.read_text())
            except (OSError, ValueError):
                payload = None  # corrupt entry: treat as a miss, recompile
        if payload is None or payload.get("format") != _DISK_FORMAT:
            self.stats.misses += 1
            return None
        meta = _Meta()
        meta.blocks = [tuple(block) for block in payload["blocks"]]
        meta.uid_line = {int(uid): line
                         for uid, line in payload["uid_line"].items()}
        meta.line_block = payload["line_block"]
        self.stats.disk_hits += 1
        return payload["source"], meta

    def store_source(self, key: str, source: str, meta: _Meta, *,
                     design_name: str = "?", opt: int = -1) -> None:
        entry_path = self._entry_path(key)
        if entry_path is None:
            return
        payload = {
            "format": _DISK_FORMAT,
            "codegen_version": CODEGEN_VERSION,
            "design": design_name,
            "opt": opt,
            "source": source,
            "blocks": [list(block) for block in meta.blocks],
            "uid_line": {str(uid): line for uid, line in meta.uid_line.items()},
            "line_block": meta.line_block,
        }
        tmp_path = entry_path.with_suffix(f".tmp.{os.getpid()}")
        try:
            tmp_path.write_text(json.dumps(payload))
            os.replace(tmp_path, entry_path)  # atomic vs racing workers
        except OSError:
            tmp_path.unlink(missing_ok=True)

    # -- maintenance ----------------------------------------------------------
    def invalidate(self, key: str) -> bool:
        """Drop one entry from both layers; True if anything was removed."""
        removed = False
        with self._lock:
            if self._classes.pop(key, None) is not None:
                removed = True
        entry_path = self._entry_path(key)
        if entry_path is not None and entry_path.exists():
            entry_path.unlink()
            removed = True
        return removed

    def clear(self) -> None:
        """Drop every entry from both layers."""
        with self._lock:
            self._classes.clear()
        if self.path is not None:
            for pattern in ("*.json", "*.tmp.*"):
                for entry in self.path.glob(pattern):
                    try:
                        entry.unlink()
                    except OSError:
                        pass

    def __len__(self) -> int:
        disk = len(list(self.path.glob("*.json"))) if self.path else 0
        return max(len(self._classes), disk)


_default_cache: Optional[ModelCache] = None
_default_lock = threading.Lock()


def default_cache_dir() -> Optional[Path]:
    """Resolve the shared cache directory from ``REPRO_MODEL_CACHE``.

    Returns ``None`` when the disk layer is disabled (value ``0``, ``off``
    or empty)."""
    value = os.environ.get("REPRO_MODEL_CACHE")
    if value is None:
        return Path.home() / ".cache" / "repro" / "models"
    if value.strip().lower() in ("", "0", "off", "none", "disabled"):
        return None
    return Path(value)


def get_default_cache() -> ModelCache:
    """The process-wide shared cache (``compile_model(..., cache=True)``)."""
    global _default_cache
    with _default_lock:
        if _default_cache is None:
            _default_cache = ModelCache(default_cache_dir())
        return _default_cache


def reset_default_cache() -> None:
    """Forget the shared cache instance (tests re-point REPRO_MODEL_CACHE)."""
    global _default_cache
    with _default_lock:
        _default_cache = None


def resolve_cache(cache) -> ModelCache:
    """Normalize ``compile_model``'s ``cache`` argument to a ModelCache."""
    if cache is True:
        return get_default_cache()
    if isinstance(cache, ModelCache):
        return cache
    raise TypeError(f"cache must be a ModelCache or True, not {cache!r}")
