"""Cuttlesim's code generator: Kôika designs to readable Python models.

This is the paper's core contribution, transposed from C++ to Python: each
design becomes a generated class with one method per rule, the scheduler
becomes a ``_cycle`` method calling the rules in turn, and the transaction
machinery is specialized per design.  The optimization ladder of §3.2–§3.3
is implemented as an explicit *pass pipeline* over the mid-level IR
(:mod:`repro.cuttlesim.ir`, :mod:`repro.cuttlesim.passes`): lowering fixes
evaluation order once, each pass refines the module's layout/policy, and
this emitter spells the result as Python.  Because IR operands are temps
bound exactly once, the "value spliced into two sites, evaluated twice"
bug family is unrepresentable here by construction.

The storage layouts (one per optimization level) remain in this file —
they are spelling, not semantics:

======  =====================================================================
``O0``  Naive: beginning-of-cycle state + interleaved rule/cycle logs
        (one ``[rd0, rd1, wr0, wr1, data0, data1]`` record per register).
``O1``  Separate read-write sets (one small int bitmask per register) from
        data, making set resets cache-friendly slice copies.
``O2``  Accumulated rule log (``L ++ l``): write checks consult one log,
        commits become plain copies.
``O3``  Reset on failure, not on entry: successful rules skip the reset.
``O4``  Merged ``data0``/``data1`` and no separate beginning-of-cycle
        state: the logs *are* the state; end-of-cycle commits disappear.
``O5``  Static analysis (§3.3): registers proven safe lose their read-write
        sets entirely, tracked flags are minimized (``rd0`` is never
        tracked), commits/rollbacks are restricted to each rule's
        footprint, and aborts before any effect return without rollback.
======  =====================================================================

Additional compile modes:

* ``instrument=True`` — insert per-block execution counters (the Gcov
  analogue used by case study 4);
* ``debug=True`` — insert ``self._hook(...)`` calls at rule entry, reads,
  writes, failures, and commits (what ``-g`` plus a debugger gives you);
* ``stop_after=<pass>`` — stop the pass pipeline after the named pass and
  emit whatever the prefix produced (the pass-equivalence debug hook).
"""

from __future__ import annotations

import linecache
import weakref
from typing import Dict, List, Optional, Set, Tuple

from ..analysis.abstract import DesignAnalysis, RD1, WR0, WR1, analyze
from ..errors import CompileError
from ..koika.design import Design
from ..koika.types import mask
from . import ir
from .model import ModelBase
from .passes import run_pipeline

# Read-write set bitmask layout for O1-O4 (one int per register).
_M_RD0, _M_RD1, _M_WR0, _M_WR1 = 1, 2, 4, 8
# Minimized flag bits for O5 (rd0 is never tracked).
_F_RD1, _F_WR0, _F_WR1 = 1, 2, 4
_F_BIT = {RD1: _F_RD1, WR0: _F_WR0, WR1: _F_WR1}

#: Footprint size beyond which commits fall back to whole-array copies
#: (the paper's "single memcpy beats many field copies").
_FOOTPRINT_FALLBACK = 16


def _hex(value: int) -> str:
    return str(value) if -10 < value < 10 else hex(value)


class _Builder:
    """Accumulates generated source lines plus coverage/line metadata."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.line_block: List[Optional[int]] = []
        self.indent = 0
        self.current_block: Optional[int] = None

    def line(self, text: str = "") -> int:
        self.lines.append(("    " * self.indent + text) if text else "")
        self.line_block.append(self.current_block if text else None)
        return len(self.lines)

    def lineno(self) -> int:
        """1-based line number of the *next* line to be emitted."""
        return len(self.lines) + 1

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


class _Meta:
    """Metadata attached to the compiled model class."""

    def __init__(self) -> None:
        #: (block_id, rule_name, kind, ast_uid_or_None)
        self.blocks: List[Tuple[int, str, str, Optional[int]]] = []
        self.uid_line: Dict[int, int] = {}
        self.line_block: List[Optional[int]] = []


# ----------------------------------------------------------------------
# Per-optimization-level layouts.
# ----------------------------------------------------------------------

class _Layout:
    """How one optimization level stores logs and implements §3.1's rules.

    Statements returned by ``read_*``/``write_*`` assume the local aliases
    from :meth:`rule_locals` are in scope.  The emitter consults the IR's
    policy bits (``check``/``track``) before asking for checks/flags, so
    layouts only answer "how", never "whether".
    """

    uses_analysis = False

    def __init__(self, design: Design, analysis: Optional[DesignAnalysis]):
        self.design = design
        self.analysis = analysis
        self.regs = list(design.registers)
        self.reg_id = {name: i for i, name in enumerate(self.regs)}
        self.n = len(self.regs)

    # Every (check, flag set, value) below implements §3.1 for its layout.
    def read_check(self, i: int, port: int) -> str:
        raise NotImplementedError

    def read_flag_stmts(self, i: int, port: int) -> List[str]:
        raise NotImplementedError

    def read_value(self, i: int, port: int) -> str:
        raise NotImplementedError

    def read_value_volatile(self, port: int) -> bool:
        """Whether :meth:`read_value` reads mutable log state (``rd1``
        forwards pending writes), so the emitter must not defer it past a
        log mutation."""
        return port == 1

    def write_check(self, i: int, port: int) -> str:
        raise NotImplementedError

    def write_stmts(self, i: int, port: int, value: str,
                    track: bool = True) -> List[str]:
        raise NotImplementedError

    def rule_locals(self, rule: str) -> List[str]:
        raise NotImplementedError

    def rule_entry(self, rule: str) -> List[str]:
        return []

    def rule_commit(self, rule: str) -> List[str]:
        """Statements to commit; end with ``return True`` (or return a
        single ``return self._helper()`` line)."""
        raise NotImplementedError

    def fail_stmt(self, rule: str, effects_so_far: bool) -> str:
        """The return statement for a failure site."""
        raise NotImplementedError

    def needs_fail_helper(self, rule: str) -> bool:
        return False

    def fail_helper_body(self, rule: str) -> List[str]:
        return []

    def cycle_start(self) -> List[str]:
        raise NotImplementedError

    def cycle_start_inline(self) -> List[str]:
        """Cycle-start statements for the inlined ``_cycle`` (may assume
        the :meth:`rule_locals` aliases are bound)."""
        return self.cycle_start()

    def cycle_end(self) -> List[str]:
        raise NotImplementedError

    def reset_body(self) -> List[str]:
        raise NotImplementedError

    def module_consts(self) -> List[str]:
        return []

    def get_reg(self) -> str:
        """Body (expression) of ``_get_reg(self, i)``."""
        raise NotImplementedError

    def set_reg(self) -> List[str]:
        raise NotImplementedError

    def peek_spec(self) -> str:
        """Expression for the speculative (mid-cycle) value of register i."""
        raise NotImplementedError

    def snapshot_expr(self) -> str:
        raise NotImplementedError

    def restore_body(self) -> List[str]:
        raise NotImplementedError


class _LayoutO0(_Layout):
    """Naive model: interleaved per-register log records (paper §3.1)."""

    def read_check(self, i, port):
        if port == 0:
            return f"L[{i}][2] or L[{i}][3]"
        return f"L[{i}][3]"

    def read_flag_stmts(self, i, port):
        return [f"l[{i}][{0 if port == 0 else 1}] = True"]

    def read_value(self, i, port):
        if port == 0:
            return f"S[{i}]"
        return f"(l[{i}][4] if l[{i}][2] else (L[{i}][4] if L[{i}][2] else S[{i}]))"

    def write_check(self, i, port):
        if port == 0:
            return (f"L[{i}][1] or L[{i}][2] or L[{i}][3] "
                    f"or l[{i}][1] or l[{i}][2] or l[{i}][3]")
        return f"L[{i}][3] or l[{i}][3]"

    def write_stmts(self, i, port, value, track=True):
        if port == 0:
            return [f"l[{i}][2] = True", f"l[{i}][4] = {value}"]
        return [f"l[{i}][3] = True", f"l[{i}][5] = {value}"]

    def rule_locals(self, rule):
        return ["S = self._state", "L = self._L", "l = self._l"]

    def rule_entry(self, rule):
        return ["self._clear_rule_log()"]

    def rule_commit(self, rule):
        return ["return self._commit_rule()"]

    def fail_stmt(self, rule, effects_so_far):
        return "return False"

    def cycle_start(self):
        return ["self._clear_cycle_log()"]

    def cycle_end(self):
        return ["self._commit_cycle()"]

    def reset_body(self):
        return [
            "self._state = list(self.REG_INIT)",
            f"self._L = [[False, False, False, False, None, None] "
            f"for _ in range({self.n})]",
            f"self._l = [[False, False, False, False, None, None] "
            f"for _ in range({self.n})]",
        ]

    def helper_methods(self) -> List[Tuple[str, List[str]]]:
        return [
            ("_clear_rule_log", [
                "for e in self._l:",
                "    e[0] = e[1] = e[2] = e[3] = False",
                "    e[4] = e[5] = None",
            ]),
            ("_clear_cycle_log", [
                "for e in self._L:",
                "    e[0] = e[1] = e[2] = e[3] = False",
                "    e[4] = e[5] = None",
            ]),
            ("_commit_rule", [
                "L = self._L",
                "for i, le in enumerate(self._l):",
                "    Le = L[i]",
                "    if le[0]: Le[0] = True",
                "    if le[1]: Le[1] = True",
                "    if le[2]:",
                "        Le[2] = True",
                "        Le[4] = le[4]",
                "    if le[3]:",
                "        Le[3] = True",
                "        Le[5] = le[5]",
                "return True",
            ]),
            ("_commit_cycle", [
                "S = self._state",
                "for i, e in enumerate(self._L):",
                "    if e[3]:",
                "        S[i] = e[5]",
                "    elif e[2]:",
                "        S[i] = e[4]",
            ]),
        ]

    def get_reg(self):
        return "self._state[i]"

    def set_reg(self):
        return ["self._state[i] = value & _RM[i]"]

    def peek_spec(self):
        return ("(self._l[i][5] if self._l[i][3] else "
                "self._l[i][4] if self._l[i][2] else "
                "self._L[i][5] if self._L[i][3] else "
                "self._L[i][4] if self._L[i][2] else self._state[i])")

    def snapshot_expr(self):
        return ("(list(self._state), [list(e) for e in self._L], "
                "[list(e) for e in self._l])")

    def restore_body(self):
        return [
            "self._state[:] = snapshot[0]",
            "self._L = [list(e) for e in snapshot[1]]",
            "self._l = [list(e) for e in snapshot[2]]",
        ]


class _LayoutO1(_Layout):
    """Separate read-write sets (int bitmasks) from data arrays."""

    def read_check(self, i, port):
        return f"Lrw[{i}] & 12" if port == 0 else f"Lrw[{i}] & 8"

    def read_flag_stmts(self, i, port):
        return [f"lrw[{i}] |= {1 if port == 0 else 2}"]

    def read_value(self, i, port):
        if port == 0:
            return f"S[{i}]"
        return (f"(ld0[{i}] if lrw[{i}] & 4 else "
                f"(Ld0[{i}] if Lrw[{i}] & 4 else S[{i}]))")

    def write_check(self, i, port):
        if port == 0:
            return f"(Lrw[{i}] | lrw[{i}]) & 14"
        return f"(Lrw[{i}] | lrw[{i}]) & 8"

    def write_stmts(self, i, port, value, track=True):
        if port == 0:
            return [f"lrw[{i}] |= 4", f"ld0[{i}] = {value}"]
        return [f"lrw[{i}] |= 8", f"ld1[{i}] = {value}"]

    def rule_locals(self, rule):
        return [
            "S = self._state",
            "Lrw = self._Lrw", "Ld0 = self._Ld0", "Ld1 = self._Ld1",
            "lrw = self._lrw", "ld0 = self._ld0", "ld1 = self._ld1",
        ]

    def rule_entry(self, rule):
        return ["lrw[:] = _RWZ"]

    def rule_commit(self, rule):
        return ["return self._commit_rule()"]

    def fail_stmt(self, rule, effects_so_far):
        return "return False"

    def cycle_start(self):
        return ["self._Lrw[:] = _RWZ"]

    def cycle_end(self):
        return ["self._commit_cycle()"]

    def reset_body(self):
        return [
            "self._state = list(self.REG_INIT)",
            f"self._Lrw = [0] * {self.n}",
            "self._Ld0 = list(self.REG_INIT)",
            "self._Ld1 = list(self.REG_INIT)",
            f"self._lrw = [0] * {self.n}",
            "self._ld0 = list(self.REG_INIT)",
            "self._ld1 = list(self.REG_INIT)",
        ]

    def module_consts(self):
        return [f"_RWZ = (0,) * {self.n}"]

    def helper_methods(self) -> List[Tuple[str, List[str]]]:
        return [
            ("_commit_rule", [
                "Lrw = self._Lrw",
                "Ld0 = self._Ld0",
                "Ld1 = self._Ld1",
                "ld0 = self._ld0",
                "ld1 = self._ld1",
                "for i, m in enumerate(self._lrw):",
                "    if m:",
                "        Lrw[i] |= m",
                "        if m & 4: Ld0[i] = ld0[i]",
                "        if m & 8: Ld1[i] = ld1[i]",
                "return True",
            ]),
            ("_commit_cycle", [
                "S = self._state",
                "Ld0 = self._Ld0",
                "Ld1 = self._Ld1",
                "for i, m in enumerate(self._Lrw):",
                "    if m & 8:",
                "        S[i] = Ld1[i]",
                "    elif m & 4:",
                "        S[i] = Ld0[i]",
            ]),
        ]

    def get_reg(self):
        return "self._state[i]"

    def set_reg(self):
        return ["self._state[i] = value & _RM[i]"]

    def peek_spec(self):
        return ("(self._ld1[i] if self._lrw[i] & 8 else "
                "self._ld0[i] if self._lrw[i] & 4 else "
                "self._Ld1[i] if self._Lrw[i] & 8 else "
                "self._Ld0[i] if self._Lrw[i] & 4 else self._state[i])")

    def snapshot_expr(self):
        return ("(list(self._state), list(self._Lrw), list(self._Ld0), "
                "list(self._Ld1), list(self._lrw), list(self._ld0), "
                "list(self._ld1))")

    def restore_body(self):
        return [
            "(self._state[:], self._Lrw[:], self._Ld0[:], self._Ld1[:],",
            " self._lrw[:], self._ld0[:], self._ld1[:]) = snapshot",
        ]


class _LayoutO23(_Layout):
    """O2 (accumulated log) and O3 (reset on failure) share a layout; they
    differ in where resets happen."""

    def __init__(self, design, analysis, reset_on_failure: bool):
        super().__init__(design, analysis)
        self.reset_on_failure = reset_on_failure

    def read_check(self, i, port):
        return f"Lrw[{i}] & 12" if port == 0 else f"Lrw[{i}] & 8"

    def read_flag_stmts(self, i, port):
        return [f"Arw[{i}] |= {1 if port == 0 else 2}"]

    def read_value(self, i, port):
        if port == 0:
            return f"S[{i}]"
        return f"(Ad0[{i}] if Arw[{i}] & 4 else S[{i}])"

    def write_check(self, i, port):
        return f"Arw[{i}] & 14" if port == 0 else f"Arw[{i}] & 8"

    def write_stmts(self, i, port, value, track=True):
        if port == 0:
            return [f"Arw[{i}] |= 4", f"Ad0[{i}] = {value}"]
        return [f"Arw[{i}] |= 8", f"Ad1[{i}] = {value}"]

    def rule_locals(self, rule):
        return [
            "S = self._state",
            "Lrw = self._Lrw", "Ld0 = self._Ld0", "Ld1 = self._Ld1",
            "Arw = self._Arw", "Ad0 = self._Ad0", "Ad1 = self._Ad1",
        ]

    def rule_entry(self, rule):
        if self.reset_on_failure:
            return []
        return ["Arw[:] = Lrw", "Ad0[:] = Ld0", "Ad1[:] = Ld1"]

    def rule_commit(self, rule):
        return ["Lrw[:] = Arw", "Ld0[:] = Ad0", "Ld1[:] = Ad1", "return True"]

    def fail_stmt(self, rule, effects_so_far):
        if self.reset_on_failure:
            return "return self._rollback()"
        return "return False"

    def helper_methods(self) -> List[Tuple[str, List[str]]]:
        helpers = [
            ("_commit_cycle", [
                "S = self._state",
                "Ld0 = self._Ld0",
                "Ld1 = self._Ld1",
                "for i, m in enumerate(self._Lrw):",
                "    if m & 8:",
                "        S[i] = Ld1[i]",
                "    elif m & 4:",
                "        S[i] = Ld0[i]",
            ]),
        ]
        if self.reset_on_failure:
            helpers.append(("_rollback", [
                "self._Arw[:] = self._Lrw",
                "self._Ad0[:] = self._Ld0",
                "self._Ad1[:] = self._Ld1",
                "return False",
            ]))
        return helpers

    def cycle_start(self):
        if self.reset_on_failure:
            return ["self._Lrw[:] = _RWZ", "self._Arw[:] = _RWZ"]
        return ["self._Lrw[:] = _RWZ"]

    def cycle_start_inline(self):
        if self.reset_on_failure:
            return ["Lrw[:] = _RWZ", "Arw[:] = _RWZ"]
        return ["Lrw[:] = _RWZ"]

    def cycle_end(self):
        return ["self._commit_cycle()"]

    def reset_body(self):
        return [
            "self._state = list(self.REG_INIT)",
            f"self._Lrw = [0] * {self.n}",
            "self._Ld0 = list(self.REG_INIT)",
            "self._Ld1 = list(self.REG_INIT)",
            f"self._Arw = [0] * {self.n}",
            "self._Ad0 = list(self.REG_INIT)",
            "self._Ad1 = list(self.REG_INIT)",
        ]

    def module_consts(self):
        return [f"_RWZ = (0,) * {self.n}"]

    def get_reg(self):
        return "self._state[i]"

    def set_reg(self):
        return ["self._state[i] = value & _RM[i]"]

    def peek_spec(self):
        return ("(self._Ad1[i] if self._Arw[i] & 8 else "
                "self._Ad0[i] if self._Arw[i] & 4 else self._state[i])")

    def snapshot_expr(self):
        return ("(list(self._state), list(self._Lrw), list(self._Ld0), "
                "list(self._Ld1), list(self._Arw), list(self._Ad0), "
                "list(self._Ad1))")

    def restore_body(self):
        return [
            "(self._state[:], self._Lrw[:], self._Ld0[:], self._Ld1[:],",
            " self._Arw[:], self._Ad0[:], self._Ad1[:]) = snapshot",
        ]


class _LayoutO4(_Layout):
    """Merged data fields, no beginning-of-cycle state: the logs *are* the
    state.  ``Ld`` holds committed values, ``Ad`` accumulated values."""

    def read_check(self, i, port):
        return f"Lrw[{i}] & 12" if port == 0 else f"Lrw[{i}] & 8"

    def read_flag_stmts(self, i, port):
        return [f"Arw[{i}] |= {1 if port == 0 else 2}"]

    def read_value(self, i, port):
        if port == 0:
            return f"Ld[{i}]"
        return f"(Ad[{i}] if Arw[{i}] & 4 else Ld[{i}])"

    def write_check(self, i, port):
        return f"Arw[{i}] & 14" if port == 0 else f"Arw[{i}] & 8"

    def write_stmts(self, i, port, value, track=True):
        return [f"Arw[{i}] |= {4 if port == 0 else 8}", f"Ad[{i}] = {value}"]

    def rule_locals(self, rule):
        return [
            "Lrw = self._Lrw", "Ld = self._Ld",
            "Arw = self._Arw", "Ad = self._Ad",
        ]

    def rule_commit(self, rule):
        return ["Lrw[:] = Arw", "Ld[:] = Ad", "return True"]

    def fail_stmt(self, rule, effects_so_far):
        return "return self._rollback()"

    def helper_methods(self) -> List[Tuple[str, List[str]]]:
        return [
            ("_rollback", [
                "self._Arw[:] = self._Lrw",
                "self._Ad[:] = self._Ld",
                "return False",
            ]),
        ]

    def cycle_start(self):
        return ["self._Lrw[:] = _RWZ", "self._Arw[:] = _RWZ"]

    def cycle_start_inline(self):
        return ["Lrw[:] = _RWZ", "Arw[:] = _RWZ"]

    def cycle_end(self):
        return []

    def reset_body(self):
        return [
            f"self._Lrw = [0] * {self.n}",
            "self._Ld = list(self.REG_INIT)",
            f"self._Arw = [0] * {self.n}",
            "self._Ad = list(self.REG_INIT)",
        ]

    def module_consts(self):
        return [f"_RWZ = (0,) * {self.n}"]

    def get_reg(self):
        return "self._Ld[i]"

    def set_reg(self):
        return [
            "value &= _RM[i]",
            "self._Ld[i] = value",
            "self._Ad[i] = value",
        ]

    def peek_spec(self):
        return "self._Ad[i]"

    def snapshot_expr(self):
        return ("(list(self._Lrw), list(self._Ld), list(self._Arw), "
                "list(self._Ad))")

    def restore_body(self):
        return [
            "(self._Lrw[:], self._Ld[:], self._Arw[:], self._Ad[:]) = snapshot",
        ]


class _LayoutO5(_LayoutO4):
    """O4 plus the design-specific optimizations of §3.3.

    Whether a check/flag survives is decided by the register-classification
    pass (the IR's ``check``/``track`` bits); this layout only answers the
    positional "how" for registers that kept them.  Tracked or may-fail
    registers are never in ``analysis.safe_registers``, so every slot
    lookup below is total."""

    uses_analysis = True

    def __init__(self, design, analysis):
        super().__init__(design, analysis)
        assert analysis is not None
        # Flag slots only for unsafe registers.
        unsafe = [r for r in self.regs if r not in analysis.safe_registers]
        self.flag_slot = {r: s for s, r in enumerate(unsafe)}
        self.m = len(unsafe)

    def read_check(self, i, port):
        slot = self.flag_slot[self.regs[i]]
        if port == 0:
            return f"Lf[{slot}] & {_F_WR0 | _F_WR1}"
        return f"Lf[{slot}] & {_F_WR1}"

    def read_flag_stmts(self, i, port):
        if port == 0:
            return []  # rd0 is never tracked in a sequential model.
        return [f"Af[{self.flag_slot[self.regs[i]]}] |= {_F_RD1}"]

    def read_value(self, i, port):
        return f"Ld[{i}]" if port == 0 else f"Ad[{i}]"

    def write_check(self, i, port):
        slot = self.flag_slot[self.regs[i]]
        if port == 0:
            return f"Af[{slot}] & {_F_RD1 | _F_WR0 | _F_WR1}"
        return f"Af[{slot}] & {_F_WR1}"

    def write_stmts(self, i, port, value, track=True):
        stmts = []
        if track:
            flag = _F_WR0 if port == 0 else _F_WR1
            stmts.append(f"Af[{self.flag_slot[self.regs[i]]}] |= {flag}")
        stmts.append(f"Ad[{i}] = {value}")
        return stmts

    def rule_locals(self, rule):
        locals_ = ["Ld = self._Ld", "Ad = self._Ad"]
        if self.m:
            locals_ += ["Lf = self._Lf", "Af = self._Af"]
        return locals_

    def rule_commit(self, rule):
        info = self.analysis.rules[rule]
        stmts: List[str] = []
        data = sorted(self.reg_id[r] for r in info.data_footprint)
        if len(data) > max(_FOOTPRINT_FALLBACK, (2 * self.n) // 3):
            stmts.append("Ld[:] = Ad")
        else:
            stmts += [f"Ld[{i}] = Ad[{i}]" for i in data]
        flags = sorted(self.flag_slot[r] for r in info.flag_footprint
                       if r in self.flag_slot)
        if len(flags) > max(_FOOTPRINT_FALLBACK, (2 * self.m) // 3):
            stmts.append("Lf[:] = Af")
        else:
            stmts += [f"Lf[{s}] = Af[{s}]" for s in flags]
        stmts.append("return True")
        return stmts

    def fail_stmt(self, rule, effects_so_far):
        if not effects_so_far:
            return "return False"  # early failure: nothing to roll back
        info = self.analysis.rules[rule]
        if not (info.data_footprint or info.flag_footprint):
            return "return False"  # empty footprint: nothing to roll back
        return f"return self._fail_{rule}()"

    def needs_fail_helper(self, rule):
        info = self.analysis.rules[rule]
        return info.may_abort and bool(info.data_footprint or info.flag_footprint)

    def fail_helper_body(self, rule):
        info = self.analysis.rules[rule]
        stmts: List[str] = []
        data = sorted(self.reg_id[r] for r in info.data_footprint)
        flags = sorted(self.flag_slot[r] for r in info.flag_footprint
                       if r in self.flag_slot)
        if data or flags:
            stmts += ["Ld = self._Ld", "Ad = self._Ad"]
        if flags:
            stmts += ["Lf = self._Lf", "Af = self._Af"]
        if len(data) > max(_FOOTPRINT_FALLBACK, (2 * self.n) // 3):
            stmts.append("Ad[:] = Ld")
        else:
            stmts += [f"Ad[{i}] = Ld[{i}]" for i in data]
        if len(flags) > max(_FOOTPRINT_FALLBACK, (2 * self.m) // 3):
            stmts.append("Af[:] = Lf")
        else:
            stmts += [f"Af[{s}] = Lf[{s}]" for s in flags]
        stmts.append("return False")
        return stmts

    def cycle_start(self):
        if not self.m:
            return []
        return ["self._Lf[:] = _FZ", "self._Af[:] = _FZ"]

    def cycle_start_inline(self):
        if not self.m:
            return []
        if self.m <= 8:
            return ([f"Lf[{s}] = 0" for s in range(self.m)]
                    + [f"Af[{s}] = 0" for s in range(self.m)])
        return ["Lf[:] = _FZ", "Af[:] = _FZ"]

    def reset_body(self):
        return [
            "self._Ld = list(self.REG_INIT)",
            "self._Ad = list(self.REG_INIT)",
            f"self._Lf = [0] * {self.m}",
            f"self._Af = [0] * {self.m}",
        ]

    def module_consts(self):
        return [f"_FZ = (0,) * {self.m}"]

    def helper_methods(self) -> List[Tuple[str, List[str]]]:
        return []

    def snapshot_expr(self):
        return ("(list(self._Ld), list(self._Ad), list(self._Lf), "
                "list(self._Af))")

    def restore_body(self):
        return [
            "(self._Ld[:], self._Ad[:], self._Lf[:], self._Af[:]) = snapshot",
        ]


def _layout_for(module: ir.ModuleIR) -> _Layout:
    """Instantiate the storage layout the pass pipeline decided on."""
    design, analysis = module.design, module.analysis
    if module.layout == "interleaved":
        return _LayoutO0(design, analysis)
    if module.layout == "rwsets":
        return _LayoutO1(design, analysis)
    if module.layout == "accumulated":
        return _LayoutO23(design, analysis,
                          reset_on_failure=module.reset_on_failure)
    if module.layout == "merged":
        return _LayoutO4(design, analysis)
    if module.layout == "classified":
        return _LayoutO5(design, analysis)
    raise CompileError(f"unknown IR layout {module.layout!r}")


# ----------------------------------------------------------------------
# Expression emission (IR -> Python expression strings).
# ----------------------------------------------------------------------

def _is_atomic(expr: str) -> bool:
    """True for expression texts that are free to duplicate: identifiers and
    the literals ``_hex`` emits (small decimals like ``-5``, and lowercase
    ``hex()`` output like ``0x1f`` / ``-0x1f``).  A bare ``0x``, an empty
    string, or a doubled sign is not a literal and must not be treated as
    one — misclassification here makes hoisting decisions unsound."""
    if expr.isidentifier():
        return True
    body = expr[1:] if expr.startswith("-") else expr
    if body.isdigit():
        return True
    return (len(body) > 2 and body.startswith("0x")
            and all(c in "0123456789abcdef" for c in body[2:]))


class _Pending:
    """A single-use expression waiting for its one consumer.

    The emitter *fuses* pure single-use temps into their consumer instead
    of materializing a Python assignment per IR statement — that is what
    keeps the generated models readable (and fast: fewer bytecode stores).
    ``volatile`` marks expressions reading mutable log state; ``locals``
    names the Python locals the expression mentions.  Barriers flush
    pendings whose captured state could change (see ``_barrier_*``)."""

    __slots__ = ("expr", "volatile", "locals")

    def __init__(self, expr: str, volatile: bool, locals_: Set[str]) -> None:
        self.expr = expr
        self.volatile = volatile
        self.locals = locals_


class _Emitter:
    """Shared IR statement emitter.  Subclasses spell the effectful
    statements (reads/writes/aborts); this base handles pure computation,
    conditionals, and the pending-fusion machinery.

    The correctness argument for fusion: a pending is created at its
    binding site and consumed at most once, downstream.  It may cross
    other statements only if nothing in between can change its value —
    enforced by ``_barrier_state`` (before any log/flag mutation, flushes
    volatile pendings), ``_barrier_local`` (before a local reassignment,
    flushes pendings mentioning it) and ``_barrier_branch`` (before any
    statement-form ``if``, flushes both kinds so no pending is evaluated
    under a different condition than it was created under).  Impure ops
    (external calls) never become pendings at all."""

    def __init__(self, out: _Builder, meta: _Meta):
        self.out = out
        self.meta = meta
        self._temps = 0
        self._uses: Dict[int, int] = {}
        self._names: Dict[int, str] = {}
        self._pending: Dict[int, _Pending] = {}
        self._acc: List[list] = []
        self._frames: List[Set[int]] = []

    def setup(self, stmts, extra=()) -> None:
        """Reset per-body state and count temp uses for ``stmts``."""
        self._uses = ir.count_uses(stmts, extra)
        self._names = {}
        self._pending = {}
        self._acc = []
        self._frames = []

    def fresh(self, hint: str = "t") -> str:
        self._temps += 1
        return f"_{hint}{self._temps}"

    def line(self, text: str) -> None:
        self.out.line(text)

    def hoist(self, expr: str) -> str:
        """Materialize a non-atomic operand in a temp so the emitted
        template can mention it more than once.  Textual duplication would
        re-evaluate the expression per mention — wasted work at best, and a
        semantic bug when it contains an ``ExtCall`` (the environment must
        see exactly one call, in sequential order)."""
        if _is_atomic(expr):
            return expr
        temp = self.fresh()
        self.line(f"{temp} = {expr}")
        return temp

    # -- operand consumption ---------------------------------------------
    def use(self, value: ir.Value) -> str:
        """The Python spelling of an operand.  Consuming a pending temp
        splices its expression here (its one and only evaluation site) and
        propagates its volatility/locals to the enclosing accumulator."""
        if isinstance(value, ir.IConst):
            return _hex(value.value)
        if isinstance(value, ir.LocalRef):
            if self._acc:
                self._acc[-1][1].add(value.name)
            return value.name
        pending = self._pending.pop(value.id, None)
        if pending is not None:
            if self._acc:
                acc = self._acc[-1]
                acc[0] = acc[0] or pending.volatile
                acc[1] |= pending.locals
            return pending.expr
        return self._names[value.id]

    def drop(self, value: ir.Value) -> None:
        """Discard an operand that will never be evaluated."""
        if isinstance(value, ir.Temp):
            self._pending.pop(value.id, None)

    def _push_acc(self) -> None:
        self._acc.append([False, set()])

    def _pop_acc(self) -> Tuple[bool, Set[str]]:
        volatile, locals_ = self._acc.pop()
        return volatile, locals_

    def _defer(self, tid: int, expr: str, volatile: bool,
               locals_: Set[str]) -> None:
        self._pending[tid] = _Pending(expr, volatile, locals_)

    # -- barriers ----------------------------------------------------------
    def _flush(self, pred) -> None:
        for tid in [t for t, p in self._pending.items() if pred(p)]:
            pending = self._pending.pop(tid)
            name = self.fresh()
            self.line(f"{name} = {pending.expr}")
            self._names[tid] = name

    def _barrier_state(self) -> None:
        """Before any log/flag/data mutation: volatile pendings must read
        the pre-mutation state they were created under."""
        self._flush(lambda p: p.volatile)

    def _barrier_local(self, name: str) -> None:
        """Before reassigning a Python local: pendings mentioning it must
        capture the old value."""
        self._flush(lambda p: name in p.locals)

    def _barrier_branch(self) -> None:
        """Before any statement-form ``if``: an arm may mutate state or
        locals, and a pending crossing the join would then evaluate under
        the wrong condition."""
        self._flush(lambda p: p.volatile or p.locals)

    # -- branch frames -----------------------------------------------------
    def _enter_frame(self) -> None:
        self._frames.append(set(self._pending))

    def _exit_frame(self) -> None:
        saved = self._frames.pop()
        for tid in [t for t in self._pending if t not in saved]:
            del self._pending[tid]

    # -- statement dispatch ------------------------------------------------
    def emit_stmts(self, stmts) -> None:
        for stmt in stmts:
            self.emit_stmt(stmt)

    def emit_stmt(self, stmt: ir.Stmt) -> None:
        if stmt.uid is not None:
            self.meta.uid_line.setdefault(stmt.uid, self.out.lineno())
        if isinstance(stmt, ir.Bind):
            self.emit_bind(stmt)
        elif isinstance(stmt, ir.SSet):
            self.emit_sset(stmt)
        elif isinstance(stmt, ir.SIf):
            self.emit_sif(stmt)
        elif isinstance(stmt, ir.SRead):
            self.emit_sread(stmt)
        elif isinstance(stmt, ir.SWrite):
            self.emit_swrite(stmt)
        elif isinstance(stmt, ir.SAbort):
            self.emit_sabort(stmt)
        else:
            raise CompileError(f"cannot emit {type(stmt).__name__}")

    # -- pure statements ---------------------------------------------------
    def emit_bind(self, stmt: ir.Bind) -> None:
        op = stmt.op
        uses = self._uses.get(stmt.temp.id, 0)
        if op.impure:
            self._barrier_state()
            self._emit_ext_bind(stmt, uses)
            return
        self._push_acc()
        expr = self._op_expr(op)
        volatile, locals_ = self._pop_acc()
        if uses <= 0:
            return  # a pure value computed for nothing: drop it entirely
        if uses == 1:
            self._defer(stmt.temp.id, expr, volatile, locals_)
            return
        name = self.fresh()
        self.line(f"{name} = {expr}")
        self._names[stmt.temp.id] = name

    def emit_sset(self, stmt: ir.SSet) -> None:
        value = self.use(stmt.value)
        if isinstance(stmt.target, ir.Temp):
            # Branch-join temp: its Python name is pre-registered by the
            # enclosing SIf emission.
            self.line(f"{self._names[stmt.target.id]} = {value}")
            return
        name = stmt.target.name
        self._barrier_local(name)
        self.line(f"{name} = {value}")

    # -- operators ---------------------------------------------------------
    def _op_expr(self, op: ir.Op) -> str:
        if isinstance(op, ir.IBin):
            return self._emit_binop(op)
        if isinstance(op, ir.IUn):
            return self._emit_unop(op)
        if isinstance(op, ir.ISubst):
            return self._emit_subst(op)
        if isinstance(op, ir.ICall):
            args = ", ".join(self.use(a) for a in op.args)
            return f"fn_{op.fn}({args})"
        raise CompileError(f"cannot emit operator {type(op).__name__}")

    def _emit_unop(self, node: ir.IUn) -> str:
        arg = self.use(node.a)
        if node.op == "not":
            return f"({arg} ^ {_hex(mask(node.width))})"
        if node.op == "neg":
            return f"(-{arg} & {_hex(mask(node.width))})"
        if node.op == "sextl":
            in_width = node.a_width
            sign_bit = _hex(1 << (in_width - 1))
            high = _hex(mask(node.param) - mask(in_width))
            arg = self.hoist(arg)
            return f"(({arg} | {high}) if {arg} & {sign_bit} else {arg})"
        # ``slice`` (zextl and zero-width sextl fold away at lowering).
        offset, width = node.param
        if offset == 0:
            return f"({arg} & {_hex(mask(width))})"
        return f"(({arg} >> {offset}) & {_hex(mask(width))})"

    def _emit_binop(self, node: ir.IBin) -> str:
        op = node.op
        a_expr = self.use(node.a)
        b_expr = self.use(node.b)
        width = node.a_width
        result_mask = _hex(mask(node.width))
        if op == "add":
            return f"(({a_expr} + {b_expr}) & {result_mask})"
        if op == "sub":
            return f"(({a_expr} - {b_expr}) & {result_mask})"
        if op == "mul":
            return f"(({a_expr} * {b_expr}) & {result_mask})"
        if op == "divu":
            b_expr = self.hoist(b_expr)
            return f"(({a_expr} // {b_expr}) if {b_expr} else {result_mask})"
        if op == "remu":
            a_expr = self.hoist(a_expr)
            b_expr = self.hoist(b_expr)
            return f"(({a_expr} % {b_expr}) if {b_expr} else {a_expr})"
        if op == "and":
            return f"({a_expr} & {b_expr})"
        if op == "or":
            return f"({a_expr} | {b_expr})"
        if op == "xor":
            return f"({a_expr} ^ {b_expr})"
        if op in ("eq", "ne", "ltu", "leu", "gtu", "geu"):
            py = {"eq": "==", "ne": "!=", "ltu": "<",
                  "leu": "<=", "gtu": ">", "geu": ">="}[op]
            return f"({a_expr} {py} {b_expr})"
        if op in ("lts", "les", "gts", "ges"):
            py = {"lts": "<", "les": "<=", "gts": ">", "ges": ">="}[op]
            half, full = _hex(1 << (width - 1)), _hex(1 << width)
            return (f"(_sgn({a_expr}, {half}, {full}) {py} "
                    f"_sgn({b_expr}, {half}, {full}))")
        if op == "concat":
            return f"(({a_expr} << {node.b_width}) | {b_expr})"
        if op == "sll":
            if isinstance(node.b, ir.IConst):
                if node.b.value >= width:
                    return "0"
                return f"(({a_expr} << {node.b.value}) & {result_mask})"
            b_expr = self.hoist(b_expr)
            return (f"((({a_expr} << {b_expr}) & {result_mask}) "
                    f"if {b_expr} < {width} else 0)")
        if op == "srl":
            if isinstance(node.b, ir.IConst):
                return "0" if node.b.value >= width else f"({a_expr} >> {node.b.value})"
            b_expr = self.hoist(b_expr)
            return f"(({a_expr} >> {b_expr}) if {b_expr} < {width} else 0)"
        if op == "sra":
            half, full = _hex(1 << (width - 1)), _hex(1 << width)
            if isinstance(node.b, ir.IConst):
                shift = str(min(node.b.value, width))
            else:
                b_expr = self.hoist(b_expr)
                shift = f"{b_expr} if {b_expr} < {width} else {width}"
            return (f"((_sgn({a_expr}, {half}, {full}) >> ({shift})) "
                    f"& {result_mask})")
        if op == "sel":
            if isinstance(node.b, ir.IConst):
                if node.b.value >= width:
                    return "0"
                return f"(({a_expr} >> {node.b.value}) & 1)"
            b_expr = self.hoist(b_expr)
            return f"((({a_expr} >> {b_expr}) & 1) if {b_expr} < {width} else 0)"
        raise CompileError(f"unknown binop {op!r}")

    def _emit_subst(self, node: ir.ISubst) -> str:
        arg_expr = self.use(node.a)
        value_expr = self.use(node.value)
        clear = _hex(mask(node.struct_width) ^ (mask(node.width) << node.offset))
        if node.offset == 0:
            return f"(({arg_expr} & {clear}) | {value_expr})"
        return f"(({arg_expr} & {clear}) | ({value_expr} << {node.offset}))"

    # -- external calls (impure: materialized at the binding site) ---------
    def _emit_ext_bind(self, stmt: ir.Bind, uses: int) -> None:
        op = stmt.op
        arg = self.use(op.a)
        call = self._ext_call_expr(op.fn, arg, _hex(mask(op.width)))
        if uses <= 0:
            # The environment still observes the call; only the result dies.
            self.line(call)
            return
        name = self.fresh()
        self.line(f"{name} = {call}")
        self._names[stmt.temp.id] = name

    def _ext_call_expr(self, fn: str, arg: str, ret_mask: str) -> str:
        return f"(self._ext_{fn}({arg}) & {ret_mask})"

    # -- conditionals ------------------------------------------------------
    def _stmts_pure(self, stmts) -> bool:
        """True when a statement list has no observable effect, so it can
        become (part of) a single Python expression or be dropped."""
        for stmt in ir.walk_stmts(stmts):
            if isinstance(stmt, ir.Bind):
                if stmt.op.impure:
                    return False
            elif isinstance(stmt, ir.SSet):
                if not isinstance(stmt.target, ir.Temp):
                    return False
            elif isinstance(stmt, ir.SRead):
                if not self._read_is_pure(stmt):
                    return False
            elif isinstance(stmt, (ir.SWrite, ir.SAbort)):
                return False
        return True

    def _read_is_pure(self, stmt: ir.SRead) -> bool:
        return False  # overridden by the rule emitter for O5 / fn emitter

    def emit_sif(self, stmt: ir.SIf) -> None:
        pure = self._stmts_pure(stmt.then) and (
            stmt.orelse is None or self._stmts_pure(stmt.orelse))
        if stmt.result is not None:
            if pure:
                self._emit_select(stmt)
                return
            # Statement form with a result temp.  The condition is
            # consumed before the barrier: it evaluates at the `if` line
            # itself, before either arm can mutate state or locals, so it
            # is always safe to fuse even when it reads locals.
            name = self.fresh()
            self._names[stmt.result.id] = name
            cond = self.use(stmt.cond)
            self._barrier_branch()
            self.line(f"if {cond}:")
            self._branch(stmt.then, stmt, "then")
            self.line("else:")
            assert stmt.orelse is not None
            self._branch(stmt.orelse, stmt, "else")
            return
        if pure:
            self.drop(stmt.cond)
            return  # both arms pure and the value discarded: nothing to do
        self._emit_sif_discard(stmt)

    def _emit_select(self, stmt: ir.SIf) -> None:
        """Both arms pure: emit a conditional expression."""
        self._push_acc()
        cond = self.use(stmt.cond)
        then = self._arm_expr(stmt.then)
        orelse = self._arm_expr(stmt.orelse)
        expr = self._select_expr(cond, then, orelse)
        volatile, locals_ = self._pop_acc()
        uses = self._uses.get(stmt.result.id, 0)
        if uses <= 0:
            return
        if uses == 1:
            self._defer(stmt.result.id, expr, volatile, locals_)
            return
        name = self.fresh()
        self.line(f"{name} = {expr}")
        self._names[stmt.result.id] = name

    def _arm_expr(self, stmts) -> str:
        """The value of a pure SIf arm: its final statement is the SSet of
        the join temp; everything before it is pure computation."""
        self.emit_stmts(stmts[:-1])
        last = stmts[-1]
        assert isinstance(last, ir.SSet)
        return self.use(last.value)

    def _select_expr(self, cond: str, then: str, orelse: str) -> str:
        return f"({then} if {cond} else {orelse})"

    def _emit_sif_discard(self, stmt: ir.SIf) -> None:
        """Discarded-value If with at least one impure arm."""
        then, orelse = stmt.then, stmt.orelse
        then_pure = self._stmts_pure(then)
        else_pure = orelse is None or self._stmts_pure(orelse)
        # Peepholes for guards: `if (!cond) abort` reads like the paper's
        # models (`if (READ0(st) != A) return false;`).
        # The condition is consumed before each barrier below: it
        # evaluates at the `if` line itself, before either arm can mutate
        # state or locals, so fusing it is always safe.
        if (orelse is not None and len(orelse) == 1
                and isinstance(orelse[0], ir.SAbort) and then_pure):
            cond = self.use(stmt.cond)
            self._barrier_branch()
            self.line(f"if not {cond}:")
            self._abort_branch(orelse[0])
            self._reblock(stmt.uid)
            return
        if len(then) == 1 and isinstance(then[0], ir.SAbort) and else_pure:
            cond = self.use(stmt.cond)
            self._barrier_branch()
            self.line(f"if {cond}:")
            self._abort_branch(then[0])
            self._reblock(stmt.uid)
            return
        cond = self.use(stmt.cond)
        self._barrier_branch()
        if then_pure and not else_pure:
            self.line(f"if not {cond}:")
            self._branch(orelse, stmt, "else")
            self._reblock(stmt.uid)
            return
        self.line(f"if {cond}:")
        self._branch(then, stmt, "then")
        if not else_pure:
            self.line("else:")
            self._branch(orelse, stmt, "else")
        self._reblock(stmt.uid)

    def _branch(self, stmts, stmt: ir.SIf, kind: str) -> None:
        self.out.indent += 1
        self._enter_block(kind, stmt.uid)
        self._enter_frame()
        before = len(self.out.lines)
        self.emit_stmts(stmts)
        if len(self.out.lines) == before and not self._block_marks():
            self.line("pass")
        self._exit_frame()
        self.out.indent -= 1
        self._exit_block()

    def _abort_branch(self, sabort: ir.SAbort) -> None:
        self.out.indent += 1
        self._enter_block("fail", sabort.uid)
        self.emit_stmt(sabort)
        self.out.indent -= 1
        self._exit_block()

    # -- effectful statements (rule context only) --------------------------
    def emit_sread(self, stmt: ir.SRead) -> None:
        raise CompileError(
            "read is not allowed in this context (pure function?)")

    def emit_swrite(self, stmt: ir.SWrite) -> None:
        raise CompileError(
            "write is not allowed in this context (pure function?)")

    def emit_sabort(self, stmt: ir.SAbort) -> None:
        raise CompileError(
            "fail is not allowed in this context (pure function?)")

    # Block hooks (only the rule emitter implements coverage counters).
    def _enter_block(self, kind: str, uid: Optional[int]) -> None:
        pass

    def _reblock(self, uid: Optional[int]) -> None:
        pass

    def _exit_block(self) -> None:
        pass

    def _block_marks(self) -> bool:
        return False


class _FnEmitter(_Emitter):
    """Emits a pure design function as a module-level Python function."""

    def _read_is_pure(self, stmt: ir.SRead) -> bool:  # pragma: no cover
        return True

    def emit_fn(self, fn: ir.FnIR) -> None:
        self.setup(fn.body, extra=(fn.result,))
        self.line(f"def fn_{fn.name}({', '.join(fn.args)}):")
        self.out.indent += 1
        self.emit_stmts(fn.body)
        self.line(f"return {self.use(fn.result)}")
        self.out.indent -= 1
        self.line("")


class _RuleEmitter(_Emitter):
    """Emits one rule as a model method returning True (commit) / False."""

    def __init__(self, out: _Builder, meta: _Meta, design: Design,
                 layout: _Layout, rule: ir.RuleIR, instrument: bool,
                 debug: bool, inline: bool = False):
        super().__init__(out, meta)
        self.design = design
        self.layout = layout
        self.rule = rule
        self.instrument = instrument
        self.debug = debug
        #: Inline mode: the rule body is emitted inside ``_cycle`` wrapped
        #: in ``while True:``; returns become breaks (what a C++ compiler's
        #: inlining does to the paper's models for free).
        self.inline = inline
        self._block_stack: List[Optional[int]] = []
        self._marked = False

    def _emit_exit(self, return_stmt: str) -> None:
        """Emit a rule exit: verbatim in method mode, translated to
        (call +) ``break`` in inline mode."""
        if not self.inline:
            self.line(return_stmt)
            return
        if return_stmt in ("return False", "return True"):
            self.line("break")
            return
        assert return_stmt.startswith("return ")
        self.line(return_stmt[len("return "):])
        self.line("break")

    # -- coverage blocks ---------------------------------------------------
    def _new_block(self, kind: str, uid: Optional[int]) -> int:
        block_id = len(self.meta.blocks)
        self.meta.blocks.append((block_id, self.rule.name, kind, uid))
        return block_id

    def _enter_block(self, kind: str, uid: Optional[int]) -> None:
        if not self.instrument:
            return
        self._block_stack.append(self.out.current_block)
        block_id = self._new_block(kind, uid)
        self.out.current_block = block_id
        self.line(f"_c[{block_id}] += 1")
        self._marked = True

    def _exit_block(self) -> None:
        if not self.instrument:
            return
        self.out.current_block = self._block_stack.pop()

    def _reblock(self, uid: Optional[int]) -> None:
        """Start a fresh basic block (gcov-style): the continuation after a
        possibly-returning construct gets its own counter, so e.g. the code
        after an early guard shows the guard's pass count."""
        if not self.instrument:
            return
        block_id = self._new_block("join", uid)
        self.out.current_block = block_id
        self.line(f"_c[{block_id}] += 1")

    def _block_marks(self) -> bool:
        if self._marked:
            self._marked = False
            return True
        return False

    # -- effectful statements ----------------------------------------------
    def _read_is_pure(self, stmt: ir.SRead) -> bool:
        return not self.debug and not stmt.check and not stmt.track

    def emit_sread(self, stmt: ir.SRead) -> None:
        layout = self.layout
        name = stmt.reg
        i = layout.reg_id[name]
        if stmt.check:
            check = layout.read_check(i, stmt.port)
            self.line(f"if {check}:  # {name}.rd{stmt.port} conflict")
            self._emit_fail_body(stmt.uid, name, f"rd{stmt.port}",
                                 stmt.effects_before)
            self._reblock(stmt.uid)
        if stmt.track:
            flag_stmts = layout.read_flag_stmts(i, stmt.port)
            if flag_stmts:
                self._barrier_state()
            for flag_stmt in flag_stmts:
                self.line(flag_stmt)
        value = layout.read_value(i, stmt.port)
        if self.debug:
            temp = self.fresh("r")
            self.line(f"{temp} = {value}  # {name}.rd{stmt.port}")
            self.line(f"if _h: _h('read', {stmt.uid}, {name!r}, "
                      f"{stmt.port}, {temp})")
            self._names[stmt.temp.id] = temp
            return
        uses = self._uses.get(stmt.temp.id, 0)
        if uses <= 0:
            return
        if uses == 1:
            self._defer(stmt.temp.id, value,
                        layout.read_value_volatile(stmt.port), set())
            return
        temp = self.fresh()
        self.line(f"{temp} = {value}")
        self._names[stmt.temp.id] = temp

    def emit_swrite(self, stmt: ir.SWrite) -> None:
        layout = self.layout
        name = stmt.reg
        i = layout.reg_id[name]
        # The value operand was lowered (and any impure part materialized)
        # before this statement — the interpreter's evaluation order.
        value_expr = self.use(stmt.value)
        if self.debug:
            # The debug hook below mentions the value a second time; it
            # must still be evaluated exactly once.
            value_expr = self.hoist(value_expr)
        if stmt.check:
            check = layout.write_check(i, stmt.port)
            self.line(f"if {check}:  # {name}.wr{stmt.port} conflict")
            self._emit_fail_body(stmt.uid, name, f"wr{stmt.port}",
                                 stmt.effects_before)
            self._reblock(stmt.uid)
        self._barrier_state()
        stmts = layout.write_stmts(i, stmt.port, value_expr,
                                   track=stmt.track)
        for index, text in enumerate(stmts):
            comment = (f"  # {name}.wr{stmt.port}"
                       if index == len(stmts) - 1 else "")
            self.line(text + comment)
        if self.debug:
            self.line(f"if _h: _h('write', {stmt.uid}, {name!r}, "
                      f"{stmt.port}, {value_expr})")

    def emit_sabort(self, stmt: ir.SAbort) -> None:
        if self.debug:
            self.line(f"if _h: _h('fail', {stmt.uid}, None, 'abort', "
                      f"{self.rule.name!r})")
        self._emit_exit(self.layout.fail_stmt(self.rule.name,
                                              stmt.effects_before))

    def _emit_fail_body(self, uid: Optional[int], register: str,
                        operation: str, effects_before: bool) -> None:
        self.out.indent += 1
        self._enter_block("fail", uid)
        if self.debug:
            self.line(f"if _h: _h('fail', {uid}, {register!r}, "
                      f"{operation!r}, {self.rule.name!r})")
        self._emit_exit(self.layout.fail_stmt(self.rule.name,
                                              effects_before))
        self.out.indent -= 1
        self._exit_block()

    # -- whole rule --------------------------------------------------------
    def emit_rule(self) -> None:
        rule = self.rule
        self.setup(rule.body)
        if self.inline:
            self.line(f"# rule {rule.name}")
            self.line("while True:")
        else:
            self.line(f"def rule_{rule.name}(self):")
        self.out.indent += 1
        if not self.inline:
            for alias in self.layout.rule_locals(rule.name):
                self.line(alias)
            if self.instrument:
                self.line("_c = self._cov")
        if self.debug:
            self.line("_h = self._hook")
            self.line(f"if _h: _h('rule', {rule.name!r})")
        self._enter_block("rule", None)
        for stmt in self.layout.rule_entry(rule.name):
            self.line(stmt)
        self.emit_stmts(rule.body)
        self._enter_block("commit", None)
        if self.debug:
            self.line(f"if _h: _h('commit', {rule.name!r})")
        for stmt in self.layout.rule_commit(rule.name):
            self._emit_exit(stmt) if stmt.startswith("return ") \
                else self.line(stmt)
        if self.inline and not self._ends_with_break():
            self.line("break")
        self._exit_block()
        self._exit_block()
        self.out.indent -= 1
        if not self.inline:
            self.line("")

    def _ends_with_break(self) -> bool:
        for text in reversed(self.out.lines):
            stripped = text.strip()
            if stripped:
                return stripped == "break"
        return False


# ----------------------------------------------------------------------
# Whole-module generation.
# ----------------------------------------------------------------------

def generate_source(design: Design, opt: int = 5, instrument: bool = False,
                    debug: bool = False,
                    analysis: Optional[DesignAnalysis] = None,
                    inline_rules: Optional[bool] = None,
                    stop_after: Optional[str] = None) -> Tuple[str, _Meta]:
    """Generate the Python source of a Cuttlesim model for ``design``.

    ``inline_rules`` controls whether the fast-path ``_cycle`` inlines
    every rule body (the Python analogue of the C++ compiler inlining the
    paper's models rely on).  Defaults to on, except for instrumented or
    debug builds, where per-rule methods keep the tooling simple.

    ``stop_after`` stops the pass pipeline after the named pass and emits
    the prefix's module — the pass-equivalence debugging hook.
    """
    if inline_rules is None:
        inline_rules = not (instrument or debug)
    module = run_pipeline(design, opt, analysis=analysis,
                          stop_after=stop_after)
    analysis = module.analysis
    layout = _layout_for(module)
    out = _Builder()
    meta = _Meta()

    out.line(f'"""Cuttlesim model for design {design.name!r} '
             f'(optimization level O{opt}).')
    out.line("")
    out.line("Auto-generated; one method per rule, `_cycle` is the scheduler.")
    out.line("Reads/writes follow Koika's port semantics; `return False`")
    out.line("aborts the current rule (early exit), `return True` commits.")
    if stop_after is not None:
        out.line("")
        out.line(f"Pass pipeline stopped after {stop_after!r}: "
                 f"[{', '.join(module.applied)}]")
    if module.layout == "classified" and analysis is not None:
        out.line("")
        out.line(f"Static analysis: {analysis.summary()}")
    out.line('"""')
    out.line("")
    out.line("def _sgn(v, half, full):")
    out.line("    return v - full if v >= half else v")
    out.line("")
    masks = ", ".join(_hex(mask(r.typ.width)) for r in design.registers.values())
    out.line(f"_RM = ({masks}{',' if len(design.registers) == 1 else ''})")
    for const in layout.module_consts():
        out.line(const)
    out.line("")

    for fn in module.fns:
        emitter = _FnEmitter(out, meta)
        emitter.emit_fn(fn)

    out.line("class Model(ModelBase):")
    out.indent += 1
    out.line(f"DESIGN_NAME = {design.name!r}")
    out.line(f"OPT_LEVEL = {opt}")
    reg_names = tuple(design.registers)
    out.line(f"REG_NAMES = {reg_names!r}")
    out.line(f"REG_INIT = {tuple(r.init for r in design.registers.values())!r}")
    out.line(f"REG_IDS = {dict((n, i) for i, n in enumerate(reg_names))!r}")
    out.line(f"RULE_NAMES = {tuple(design.scheduler)!r}")
    out.line("")

    extfuns = sorted(design.extfuns)
    if extfuns:
        out.line("def _bind_extfuns(self):")
        out.indent += 1
        for name in extfuns:
            out.line(f"self._ext_{name} = self._env.resolve({name!r})")
        out.indent -= 1
        out.line("")

    out.line("def reset(self):")
    out.indent += 1
    out.line("self.cycle = 0")
    for stmt in layout.reset_body():
        out.line(stmt)
    out.indent -= 1
    out.line("")

    for rule in module.rules:
        emitter = _RuleEmitter(out, meta, design, layout, rule, instrument,
                               debug)
        emitter.emit_rule()
        if layout.needs_fail_helper(rule.name):
            out.line(f"def _fail_{rule.name}(self):")
            out.indent += 1
            for stmt in layout.fail_helper_body(rule.name):
                out.line(stmt)
            out.indent -= 1
            out.line("")

    for name, body in getattr(layout, "helper_methods", lambda: [])():
        out.line(f"def {name}(self):")
        out.indent += 1
        for stmt in body:
            out.line(stmt)
        out.indent -= 1
        out.line("")

    # The scheduler, fast path and reporting/ordered variants.
    def emit_cycle(name: str, report: bool) -> None:
        out.line(f"def {name}(self):")
        out.indent += 1
        out.line("env = self._env")
        out.line("env.before_cycle(self)")
        if report or not inline_rules:
            for stmt in layout.cycle_start():
                out.line(stmt)
        if report:
            out.line("committed = []")
        if not report and inline_rules:
            # Whole-cycle inlining: bind the log aliases once, then paste
            # every rule body (wrapped in `while True:` so failure paths
            # `break` out — the cost model of the paper's inlined C++).
            for alias in layout.rule_locals(""):
                out.line(alias)
            for stmt in layout.cycle_start_inline():
                out.line(stmt)
            for rule in module.rules:
                emitter = _RuleEmitter(out, meta, design, layout, rule,
                                       instrument=False, debug=False,
                                       inline=True)
                emitter.emit_rule()
        else:
            for rule_name in design.scheduler:
                if report:
                    out.line(f"if self.rule_{rule_name}():")
                    out.line(f"    committed.append({rule_name!r})")
                else:
                    out.line(f"self.rule_{rule_name}()")
        for stmt in layout.cycle_end():
            out.line(stmt)
        out.line("self.cycle += 1")
        out.line("env.after_cycle(self)")
        if report:
            out.line("return committed")
        out.indent -= 1
        out.line("")

    emit_cycle("_cycle", report=False)
    emit_cycle("_cycle_report", report=True)

    out.line("def _cycle_ordered(self, methods):")
    out.indent += 1
    out.line("env = self._env")
    out.line("env.before_cycle(self)")
    for stmt in layout.cycle_start():
        out.line(stmt)
    out.line("committed = []")
    out.line("for name, method in methods:")
    out.line("    if method():")
    out.line("        committed.append(name)")
    for stmt in layout.cycle_end():
        out.line(stmt)
    out.line("self.cycle += 1")
    out.line("env.after_cycle(self)")
    out.line("return committed")
    out.indent -= 1
    out.line("")

    out.line("def _get_reg(self, i):")
    out.line(f"    return {layout.get_reg()}")
    out.line("")
    out.line("def _set_reg(self, i, value):")
    out.indent += 1
    for stmt in layout.set_reg():
        out.line(stmt)
    out.indent -= 1
    out.line("")
    out.line("def _peek_spec(self, i):")
    out.line(f"    return {layout.peek_spec()}")
    out.line("")
    out.line("def _snapshot(self):")
    out.line(f"    return {layout.snapshot_expr()}")
    out.line("")
    out.line("def _restore(self, snapshot):")
    out.indent += 1
    for stmt in layout.restore_body():
        out.line(stmt)
    out.indent -= 1
    out.indent -= 1

    meta.line_block = list(out.line_block)
    return out.source(), meta


_compile_counter = 0

#: Bump whenever the emitter's output changes; part of every model-cache
#: key so stale on-disk entries are never replayed by a newer compiler.
CODEGEN_VERSION = 3


def _finish_class(source: str, meta: _Meta, design: Design, opt: int,
                  host_optimize: int, analysis: Optional[DesignAnalysis]):
    """Compile + exec generated source into a model class and attach the
    metadata tables.  Shared by the cold path and cache-hit loads."""
    global _compile_counter
    _compile_counter += 1
    filename = f"<cuttlesim:{design.name}-O{opt}#{_compile_counter}>"
    namespace: Dict[str, object] = {"ModelBase": ModelBase}
    try:
        code = compile(source, filename, "exec", optimize=host_optimize)
    except SyntaxError as exc:  # pragma: no cover - compiler bug guard
        raise CompileError(
            f"generated model failed to parse ({exc}); source:\n{source}"
        ) from exc
    exec(code, namespace)
    cls = namespace["Model"]
    cls.SOURCE = source
    cls.N_COV = len(meta.blocks)
    cls.COV_BLOCKS = tuple(meta.blocks)
    cls.META = meta
    cls.ANALYSIS = analysis
    cls.DESIGN = design
    cls.REG_TYPES = tuple(r.typ for r in design.registers.values())
    cls.FILENAME = filename
    linecache.cache[filename] = (len(source), None,
                                 source.splitlines(True), filename)
    # Long-running sweep services compile thousands of models; drop the
    # linecache entry once nothing references the class any more, instead
    # of accumulating pseudo-files forever.
    weakref.finalize(cls, linecache.cache.pop, filename, None)
    return cls


def compile_model(design: Design, opt: int = 5, instrument: bool = False,
                  debug: bool = False, order_independent: bool = False,
                  warn_goldberg: bool = True, inline_rules=None,
                  host_optimize: int = -1, simplify: bool = False,
                  cache=None, batch: int = 0, batch_backend: str = "auto",
                  shard_key: str = ""):
    """Compile a design into a Cuttlesim model class.

    Returns the class; instantiate with an :class:`Environment` to simulate.
    ``order_independent=True`` makes the O5 analysis sound for any rule
    order (required before using ``run_cycle(order=...)`` with O5 models).
    ``host_optimize`` is forwarded to the host compiler (CPython's
    ``compile(optimize=...)``) — the knob Figure 3's toolchain-sensitivity
    experiment turns, standing in for the paper's GCC-vs-Clang axis.

    ``cache`` enables the content-addressed model cache: pass a
    :class:`repro.cuttlesim.cache.ModelCache`, or ``True`` for the shared
    process-default cache.  Warm loads skip analysis and emission (and, on
    in-process hits, ``compile``/``exec`` too).  Instrumented and debug
    builds always compile cold — their metadata embeds AST-node uids that
    are only meaningful for the exact design object they were generated
    from.  On a cache hit ``warn_goldberg`` warnings are not re-issued and
    ``cls.ANALYSIS`` is ``None``.

    ``batch=B`` (B >= 1) compiles a width-B **lockstep** model instead: B
    independent trials simulated by one class deriving from
    :class:`repro.cuttlesim.model.BatchModelBase` (see
    :mod:`repro.cuttlesim.batch`).  ``batch_backend`` selects the lane
    representation (``"auto"``, ``"numpy"`` or ``"list"``).  Batched
    builds follow the O2 semantics family and reject ``instrument``,
    ``debug``, ``simplify`` and ``inline_rules``.

    ``shard_key`` is set by the sharded tier (:mod:`repro.shard`) when
    compiling a shard *sub-design*: it extends the cache key with the
    shard's index and the partition's content hash, keeping shard models
    distinct from whole-design models in the shared cache.
    """
    if not design.finalized:
        design.finalize()
    if batch:
        if instrument or debug or simplify or inline_rules:
            raise CompileError(
                "batched lockstep models do not support instrument/debug/"
                "simplify/inline_rules; compile a scalar model for those")
        from .batch import compile_batch_model

        return compile_batch_model(design, batch, backend=batch_backend,
                                   cache=cache, host_optimize=host_optimize)
    store = None
    key = None
    if cache is not None and not (instrument or debug):
        from .cache import resolve_cache

        store = resolve_cache(cache)
        key = store.key_for(design, opt=opt, order_independent=order_independent,
                            simplify=simplify, inline_rules=inline_rules,
                            host_optimize=host_optimize, shard=shard_key)
        cls = store.lookup_class(key)
        if cls is not None:
            return cls
        entry = store.lookup_source(key)
        if entry is not None:
            source, meta = entry
            cls = _finish_class(source, meta, design, opt, host_optimize,
                                analysis=None)
            store.store_class(key, cls)
            return cls
    if simplify:
        from ..koika.simplify import simplify_design

        design = simplify_design(design)
    analysis = None
    if opt >= 5:
        analysis = analyze(design, order_independent=order_independent)
        if warn_goldberg and opt >= 4:
            for warning in analysis.goldberg_warnings:
                import warnings

                warnings.warn(warning, stacklevel=2)
    source, meta = generate_source(design, opt=opt, instrument=instrument,
                                   debug=debug, analysis=analysis,
                                   inline_rules=inline_rules)
    cls = _finish_class(source, meta, design, opt, host_optimize, analysis)
    if store is not None:
        store.store_source(key, source, meta, design_name=design.name, opt=opt)
        store.store_class(key, cls)
    return cls


def compile_model_prefix(design: Design, opt: int = 5,
                         stop_after: Optional[str] = None,
                         host_optimize: int = -1):
    """Compile ``design`` with the pass pipeline stopped after the named
    pass — the entry point for pass-equivalence testing and ``--stop-after``
    debugging.  Never cached, never instrumented."""
    if not design.finalized:
        design.finalize()
    source, meta = generate_source(design, opt=opt, stop_after=stop_after)
    return _finish_class(source, meta, design, opt, host_optimize,
                         analysis=None)
