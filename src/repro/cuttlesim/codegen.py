"""Cuttlesim's code generator: Kôika designs to readable Python models.

This is the paper's core contribution, transposed from C++ to Python: each
design becomes a generated class with one method per rule, the scheduler
becomes a ``_cycle`` method calling the rules in turn, and the transaction
machinery is specialized per design.  The optimization ladder of §3.2–§3.3
is implemented as six distinct layouts so each refinement is measurable:

======  =====================================================================
``O0``  Naive: beginning-of-cycle state + interleaved rule/cycle logs
        (one ``[rd0, rd1, wr0, wr1, data0, data1]`` record per register).
``O1``  Separate read-write sets (one small int bitmask per register) from
        data, making set resets cache-friendly slice copies.
``O2``  Accumulated rule log (``L ++ l``): write checks consult one log,
        commits become plain copies.
``O3``  Reset on failure, not on entry: successful rules skip the reset.
``O4``  Merged ``data0``/``data1`` and no separate beginning-of-cycle
        state: the logs *are* the state; end-of-cycle commits disappear.
``O5``  Static analysis (§3.3): registers proven safe lose their read-write
        sets entirely, tracked flags are minimized (``rd0`` is never
        tracked), commits/rollbacks are restricted to each rule's
        footprint, and aborts before any effect return without rollback.
======  =====================================================================

Additional compile modes:

* ``instrument=True`` — insert per-block execution counters (the Gcov
  analogue used by case study 4);
* ``debug=True`` — insert ``self._hook(...)`` calls at rule entry, reads,
  writes, failures, and commits (what ``-g`` plus a debugger gives you).
"""

from __future__ import annotations

import linecache
import weakref
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..analysis.abstract import DesignAnalysis, RD1, WR0, WR1, analyze
from ..errors import CompileError
from ..harness.env import Environment
from ..koika.ast import (
    Abort,
    Action,
    Assign,
    Binop,
    Call,
    Const,
    ExtCall,
    GetField,
    If,
    Let,
    Read,
    Seq,
    SubstField,
    Unop,
    Var,
    Write,
    walk,
)
from ..koika.design import Design, Fn, Rule
from ..koika.types import StructType, mask
from .model import ModelBase

# Read-write set bitmask layout for O1-O4 (one int per register).
_M_RD0, _M_RD1, _M_WR0, _M_WR1 = 1, 2, 4, 8
# Minimized flag bits for O5 (rd0 is never tracked).
_F_RD1, _F_WR0, _F_WR1 = 1, 2, 4
_F_BIT = {RD1: _F_RD1, WR0: _F_WR0, WR1: _F_WR1}

#: Footprint size beyond which commits fall back to whole-array copies
#: (the paper's "single memcpy beats many field copies").
_FOOTPRINT_FALLBACK = 16


def _hex(value: int) -> str:
    return str(value) if -10 < value < 10 else hex(value)


class _Builder:
    """Accumulates generated source lines plus coverage/line metadata."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.line_block: List[Optional[int]] = []
        self.indent = 0
        self.current_block: Optional[int] = None

    def line(self, text: str = "") -> int:
        self.lines.append(("    " * self.indent + text) if text else "")
        self.line_block.append(self.current_block if text else None)
        return len(self.lines)

    def lineno(self) -> int:
        """1-based line number of the *next* line to be emitted."""
        return len(self.lines) + 1

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


class _Meta:
    """Metadata attached to the compiled model class."""

    def __init__(self) -> None:
        #: (block_id, rule_name, kind, ast_uid_or_None)
        self.blocks: List[Tuple[int, str, str, Optional[int]]] = []
        self.uid_line: Dict[int, int] = {}
        self.line_block: List[Optional[int]] = []


# ----------------------------------------------------------------------
# Per-optimization-level layouts.
# ----------------------------------------------------------------------

class _Layout:
    """How one optimization level stores logs and implements §3.1's rules.

    Statements returned by ``read_*``/``write_*`` assume the local aliases
    from :meth:`rule_locals` are in scope.
    """

    uses_analysis = False

    def __init__(self, design: Design, analysis: Optional[DesignAnalysis]):
        self.design = design
        self.analysis = analysis
        self.regs = list(design.registers)
        self.reg_id = {name: i for i, name in enumerate(self.regs)}
        self.n = len(self.regs)

    # Every (check, flag set, value) below implements §3.1 for its layout.
    def read_check(self, i: int, port: int) -> Optional[str]:
        raise NotImplementedError

    def read_flag_stmts(self, i: int, port: int) -> List[str]:
        raise NotImplementedError

    def read_value(self, i: int, port: int) -> str:
        raise NotImplementedError

    def write_check(self, i: int, port: int) -> Optional[str]:
        raise NotImplementedError

    def write_stmts(self, i: int, port: int, value: str) -> List[str]:
        raise NotImplementedError

    def rule_locals(self, rule: str) -> List[str]:
        raise NotImplementedError

    def rule_entry(self, rule: str) -> List[str]:
        return []

    def rule_commit(self, rule: str) -> List[str]:
        """Statements to commit; end with ``return True`` (or return a
        single ``return self._helper()`` line)."""
        raise NotImplementedError

    def fail_stmt(self, rule: str, effects_so_far: bool) -> str:
        """The return statement for a failure site."""
        raise NotImplementedError

    def needs_fail_helper(self, rule: str) -> bool:
        return False

    def fail_helper_body(self, rule: str) -> List[str]:
        return []

    def cycle_start(self) -> List[str]:
        raise NotImplementedError

    def cycle_start_inline(self) -> List[str]:
        """Cycle-start statements for the inlined ``_cycle`` (may assume
        the :meth:`rule_locals` aliases are bound)."""
        return self.cycle_start()

    def cycle_end(self) -> List[str]:
        raise NotImplementedError

    def reset_body(self) -> List[str]:
        raise NotImplementedError

    def module_consts(self) -> List[str]:
        return []

    def get_reg(self) -> str:
        """Body (expression) of ``_get_reg(self, i)``."""
        raise NotImplementedError

    def set_reg(self) -> List[str]:
        raise NotImplementedError

    def peek_spec(self) -> str:
        """Expression for the speculative (mid-cycle) value of register i."""
        raise NotImplementedError

    def snapshot_expr(self) -> str:
        raise NotImplementedError

    def restore_body(self) -> List[str]:
        raise NotImplementedError


class _LayoutO0(_Layout):
    """Naive model: interleaved per-register log records (paper §3.1)."""

    def read_check(self, i, port):
        if port == 0:
            return f"L[{i}][2] or L[{i}][3]"
        return f"L[{i}][3]"

    def read_flag_stmts(self, i, port):
        return [f"l[{i}][{0 if port == 0 else 1}] = True"]

    def read_value(self, i, port):
        if port == 0:
            return f"S[{i}]"
        return f"(l[{i}][4] if l[{i}][2] else (L[{i}][4] if L[{i}][2] else S[{i}]))"

    def write_check(self, i, port):
        if port == 0:
            return (f"L[{i}][1] or L[{i}][2] or L[{i}][3] "
                    f"or l[{i}][1] or l[{i}][2] or l[{i}][3]")
        return f"L[{i}][3] or l[{i}][3]"

    def write_stmts(self, i, port, value):
        if port == 0:
            return [f"l[{i}][2] = True", f"l[{i}][4] = {value}"]
        return [f"l[{i}][3] = True", f"l[{i}][5] = {value}"]

    def rule_locals(self, rule):
        return ["S = self._state", "L = self._L", "l = self._l"]

    def rule_entry(self, rule):
        return ["self._clear_rule_log()"]

    def rule_commit(self, rule):
        return ["return self._commit_rule()"]

    def fail_stmt(self, rule, effects_so_far):
        return "return False"

    def cycle_start(self):
        return ["self._clear_cycle_log()"]

    def cycle_end(self):
        return ["self._commit_cycle()"]

    def reset_body(self):
        return [
            "self._state = list(self.REG_INIT)",
            f"self._L = [[False, False, False, False, None, None] "
            f"for _ in range({self.n})]",
            f"self._l = [[False, False, False, False, None, None] "
            f"for _ in range({self.n})]",
        ]

    def helper_methods(self) -> List[Tuple[str, List[str]]]:
        return [
            ("_clear_rule_log", [
                "for e in self._l:",
                "    e[0] = e[1] = e[2] = e[3] = False",
                "    e[4] = e[5] = None",
            ]),
            ("_clear_cycle_log", [
                "for e in self._L:",
                "    e[0] = e[1] = e[2] = e[3] = False",
                "    e[4] = e[5] = None",
            ]),
            ("_commit_rule", [
                "L = self._L",
                "for i, le in enumerate(self._l):",
                "    Le = L[i]",
                "    if le[0]: Le[0] = True",
                "    if le[1]: Le[1] = True",
                "    if le[2]:",
                "        Le[2] = True",
                "        Le[4] = le[4]",
                "    if le[3]:",
                "        Le[3] = True",
                "        Le[5] = le[5]",
                "return True",
            ]),
            ("_commit_cycle", [
                "S = self._state",
                "for i, e in enumerate(self._L):",
                "    if e[3]:",
                "        S[i] = e[5]",
                "    elif e[2]:",
                "        S[i] = e[4]",
            ]),
        ]

    def get_reg(self):
        return "self._state[i]"

    def set_reg(self):
        return ["self._state[i] = value & _RM[i]"]

    def peek_spec(self):
        return ("(self._l[i][5] if self._l[i][3] else "
                "self._l[i][4] if self._l[i][2] else "
                "self._L[i][5] if self._L[i][3] else "
                "self._L[i][4] if self._L[i][2] else self._state[i])")

    def snapshot_expr(self):
        return ("(list(self._state), [list(e) for e in self._L], "
                "[list(e) for e in self._l])")

    def restore_body(self):
        return [
            "self._state[:] = snapshot[0]",
            "self._L = [list(e) for e in snapshot[1]]",
            "self._l = [list(e) for e in snapshot[2]]",
        ]


class _LayoutO1(_Layout):
    """Separate read-write sets (int bitmasks) from data arrays."""

    def read_check(self, i, port):
        return f"Lrw[{i}] & 12" if port == 0 else f"Lrw[{i}] & 8"

    def read_flag_stmts(self, i, port):
        return [f"lrw[{i}] |= {1 if port == 0 else 2}"]

    def read_value(self, i, port):
        if port == 0:
            return f"S[{i}]"
        return (f"(ld0[{i}] if lrw[{i}] & 4 else "
                f"(Ld0[{i}] if Lrw[{i}] & 4 else S[{i}]))")

    def write_check(self, i, port):
        if port == 0:
            return f"(Lrw[{i}] | lrw[{i}]) & 14"
        return f"(Lrw[{i}] | lrw[{i}]) & 8"

    def write_stmts(self, i, port, value):
        if port == 0:
            return [f"lrw[{i}] |= 4", f"ld0[{i}] = {value}"]
        return [f"lrw[{i}] |= 8", f"ld1[{i}] = {value}"]

    def rule_locals(self, rule):
        return [
            "S = self._state",
            "Lrw = self._Lrw", "Ld0 = self._Ld0", "Ld1 = self._Ld1",
            "lrw = self._lrw", "ld0 = self._ld0", "ld1 = self._ld1",
        ]

    def rule_entry(self, rule):
        return ["lrw[:] = _RWZ"]

    def rule_commit(self, rule):
        return ["return self._commit_rule()"]

    def fail_stmt(self, rule, effects_so_far):
        return "return False"

    def cycle_start(self):
        return ["self._Lrw[:] = _RWZ"]

    def cycle_end(self):
        return ["self._commit_cycle()"]

    def reset_body(self):
        return [
            "self._state = list(self.REG_INIT)",
            f"self._Lrw = [0] * {self.n}",
            "self._Ld0 = list(self.REG_INIT)",
            "self._Ld1 = list(self.REG_INIT)",
            f"self._lrw = [0] * {self.n}",
            "self._ld0 = list(self.REG_INIT)",
            "self._ld1 = list(self.REG_INIT)",
        ]

    def module_consts(self):
        return [f"_RWZ = (0,) * {self.n}"]

    def helper_methods(self) -> List[Tuple[str, List[str]]]:
        return [
            ("_commit_rule", [
                "Lrw = self._Lrw",
                "Ld0 = self._Ld0",
                "Ld1 = self._Ld1",
                "ld0 = self._ld0",
                "ld1 = self._ld1",
                "for i, m in enumerate(self._lrw):",
                "    if m:",
                "        Lrw[i] |= m",
                "        if m & 4: Ld0[i] = ld0[i]",
                "        if m & 8: Ld1[i] = ld1[i]",
                "return True",
            ]),
            ("_commit_cycle", [
                "S = self._state",
                "Ld0 = self._Ld0",
                "Ld1 = self._Ld1",
                "for i, m in enumerate(self._Lrw):",
                "    if m & 8:",
                "        S[i] = Ld1[i]",
                "    elif m & 4:",
                "        S[i] = Ld0[i]",
            ]),
        ]

    def get_reg(self):
        return "self._state[i]"

    def set_reg(self):
        return ["self._state[i] = value & _RM[i]"]

    def peek_spec(self):
        return ("(self._ld1[i] if self._lrw[i] & 8 else "
                "self._ld0[i] if self._lrw[i] & 4 else "
                "self._Ld1[i] if self._Lrw[i] & 8 else "
                "self._Ld0[i] if self._Lrw[i] & 4 else self._state[i])")

    def snapshot_expr(self):
        return ("(list(self._state), list(self._Lrw), list(self._Ld0), "
                "list(self._Ld1), list(self._lrw), list(self._ld0), "
                "list(self._ld1))")

    def restore_body(self):
        return [
            "(self._state[:], self._Lrw[:], self._Ld0[:], self._Ld1[:],",
            " self._lrw[:], self._ld0[:], self._ld1[:]) = snapshot",
        ]


class _LayoutO23(_Layout):
    """O2 (accumulated log) and O3 (reset on failure) share a layout; they
    differ in where resets happen."""

    def __init__(self, design, analysis, reset_on_failure: bool):
        super().__init__(design, analysis)
        self.reset_on_failure = reset_on_failure

    def read_check(self, i, port):
        return f"Lrw[{i}] & 12" if port == 0 else f"Lrw[{i}] & 8"

    def read_flag_stmts(self, i, port):
        return [f"Arw[{i}] |= {1 if port == 0 else 2}"]

    def read_value(self, i, port):
        if port == 0:
            return f"S[{i}]"
        return f"(Ad0[{i}] if Arw[{i}] & 4 else S[{i}])"

    def write_check(self, i, port):
        return f"Arw[{i}] & 14" if port == 0 else f"Arw[{i}] & 8"

    def write_stmts(self, i, port, value):
        if port == 0:
            return [f"Arw[{i}] |= 4", f"Ad0[{i}] = {value}"]
        return [f"Arw[{i}] |= 8", f"Ad1[{i}] = {value}"]

    def rule_locals(self, rule):
        return [
            "S = self._state",
            "Lrw = self._Lrw", "Ld0 = self._Ld0", "Ld1 = self._Ld1",
            "Arw = self._Arw", "Ad0 = self._Ad0", "Ad1 = self._Ad1",
        ]

    def rule_entry(self, rule):
        if self.reset_on_failure:
            return []
        return ["Arw[:] = Lrw", "Ad0[:] = Ld0", "Ad1[:] = Ld1"]

    def rule_commit(self, rule):
        return ["Lrw[:] = Arw", "Ld0[:] = Ad0", "Ld1[:] = Ad1", "return True"]

    def fail_stmt(self, rule, effects_so_far):
        if self.reset_on_failure:
            return "return self._rollback()"
        return "return False"

    def helper_methods(self) -> List[Tuple[str, List[str]]]:
        helpers = [
            ("_commit_cycle", [
                "S = self._state",
                "Ld0 = self._Ld0",
                "Ld1 = self._Ld1",
                "for i, m in enumerate(self._Lrw):",
                "    if m & 8:",
                "        S[i] = Ld1[i]",
                "    elif m & 4:",
                "        S[i] = Ld0[i]",
            ]),
        ]
        if self.reset_on_failure:
            helpers.append(("_rollback", [
                "self._Arw[:] = self._Lrw",
                "self._Ad0[:] = self._Ld0",
                "self._Ad1[:] = self._Ld1",
                "return False",
            ]))
        return helpers

    def cycle_start(self):
        if self.reset_on_failure:
            return ["self._Lrw[:] = _RWZ", "self._Arw[:] = _RWZ"]
        return ["self._Lrw[:] = _RWZ"]

    def cycle_start_inline(self):
        if self.reset_on_failure:
            return ["Lrw[:] = _RWZ", "Arw[:] = _RWZ"]
        return ["Lrw[:] = _RWZ"]

    def cycle_end(self):
        return ["self._commit_cycle()"]

    def reset_body(self):
        return [
            "self._state = list(self.REG_INIT)",
            f"self._Lrw = [0] * {self.n}",
            "self._Ld0 = list(self.REG_INIT)",
            "self._Ld1 = list(self.REG_INIT)",
            f"self._Arw = [0] * {self.n}",
            "self._Ad0 = list(self.REG_INIT)",
            "self._Ad1 = list(self.REG_INIT)",
        ]

    def module_consts(self):
        return [f"_RWZ = (0,) * {self.n}"]

    def get_reg(self):
        return "self._state[i]"

    def set_reg(self):
        return ["self._state[i] = value & _RM[i]"]

    def peek_spec(self):
        return ("(self._Ad1[i] if self._Arw[i] & 8 else "
                "self._Ad0[i] if self._Arw[i] & 4 else self._state[i])")

    def snapshot_expr(self):
        return ("(list(self._state), list(self._Lrw), list(self._Ld0), "
                "list(self._Ld1), list(self._Arw), list(self._Ad0), "
                "list(self._Ad1))")

    def restore_body(self):
        return [
            "(self._state[:], self._Lrw[:], self._Ld0[:], self._Ld1[:],",
            " self._Arw[:], self._Ad0[:], self._Ad1[:]) = snapshot",
        ]


class _LayoutO4(_Layout):
    """Merged data fields, no beginning-of-cycle state: the logs *are* the
    state.  ``Ld`` holds committed values, ``Ad`` accumulated values."""

    def read_check(self, i, port):
        return f"Lrw[{i}] & 12" if port == 0 else f"Lrw[{i}] & 8"

    def read_flag_stmts(self, i, port):
        return [f"Arw[{i}] |= {1 if port == 0 else 2}"]

    def read_value(self, i, port):
        if port == 0:
            return f"Ld[{i}]"
        return f"(Ad[{i}] if Arw[{i}] & 4 else Ld[{i}])"

    def write_check(self, i, port):
        return f"Arw[{i}] & 14" if port == 0 else f"Arw[{i}] & 8"

    def write_stmts(self, i, port, value):
        return [f"Arw[{i}] |= {4 if port == 0 else 8}", f"Ad[{i}] = {value}"]

    def rule_locals(self, rule):
        return [
            "Lrw = self._Lrw", "Ld = self._Ld",
            "Arw = self._Arw", "Ad = self._Ad",
        ]

    def rule_commit(self, rule):
        return ["Lrw[:] = Arw", "Ld[:] = Ad", "return True"]

    def fail_stmt(self, rule, effects_so_far):
        return "return self._rollback()"

    def helper_methods(self) -> List[Tuple[str, List[str]]]:
        return [
            ("_rollback", [
                "self._Arw[:] = self._Lrw",
                "self._Ad[:] = self._Ld",
                "return False",
            ]),
        ]

    def cycle_start(self):
        return ["self._Lrw[:] = _RWZ", "self._Arw[:] = _RWZ"]

    def cycle_start_inline(self):
        return ["Lrw[:] = _RWZ", "Arw[:] = _RWZ"]

    def cycle_end(self):
        return []

    def reset_body(self):
        return [
            f"self._Lrw = [0] * {self.n}",
            "self._Ld = list(self.REG_INIT)",
            f"self._Arw = [0] * {self.n}",
            "self._Ad = list(self.REG_INIT)",
        ]

    def module_consts(self):
        return [f"_RWZ = (0,) * {self.n}"]

    def get_reg(self):
        return "self._Ld[i]"

    def set_reg(self):
        return [
            "value &= _RM[i]",
            "self._Ld[i] = value",
            "self._Ad[i] = value",
        ]

    def peek_spec(self):
        return "self._Ad[i]"

    def snapshot_expr(self):
        return ("(list(self._Lrw), list(self._Ld), list(self._Arw), "
                "list(self._Ad))")

    def restore_body(self):
        return [
            "(self._Lrw[:], self._Ld[:], self._Arw[:], self._Ad[:]) = snapshot",
        ]


class _LayoutO5(_LayoutO4):
    """O4 plus the design-specific optimizations of §3.3."""

    uses_analysis = True

    def __init__(self, design, analysis):
        super().__init__(design, analysis)
        assert analysis is not None
        # Flag slots only for unsafe registers.
        unsafe = [r for r in self.regs if r not in analysis.safe_registers]
        self.flag_slot = {r: s for s, r in enumerate(unsafe)}
        self.m = len(unsafe)

    def _info(self, node):
        return self.analysis.node_info.get(node.uid)

    # Node-aware variants (the emitter calls these with the AST node).
    def node_read_check(self, node: Read) -> Optional[str]:
        info = self._info(node)
        if info is None or not info.may_fail:
            return None
        slot = self.flag_slot[node.reg]
        if node.port == 0:
            return f"Lf[{slot}] & {_F_WR0 | _F_WR1}"
        return f"Lf[{slot}] & {_F_WR1}"

    def node_read_flag_stmts(self, node: Read) -> List[str]:
        if node.port == 0:
            return []  # rd0 is never tracked in a sequential model.
        tracked = self.analysis.tracked_flags.get(node.reg, set())
        if RD1 not in tracked:
            return []
        return [f"Af[{self.flag_slot[node.reg]}] |= {_F_RD1}"]

    def node_read_value(self, node: Read) -> str:
        i = self.reg_id[node.reg]
        return f"Ld[{i}]" if node.port == 0 else f"Ad[{i}]"

    def node_write_check(self, node: Write) -> Optional[str]:
        info = self._info(node)
        if info is None or not info.may_fail:
            return None
        slot = self.flag_slot[node.reg]
        if node.port == 0:
            return f"Af[{slot}] & {_F_RD1 | _F_WR0 | _F_WR1}"
        return f"Af[{slot}] & {_F_WR1}"

    def node_write_stmts(self, node: Write, value: str) -> List[str]:
        stmts = []
        tracked = self.analysis.tracked_flags.get(node.reg, set())
        flag = WR0 if node.port == 0 else WR1
        if flag in tracked:
            stmts.append(f"Af[{self.flag_slot[node.reg]}] |= {_F_BIT[flag]}")
        stmts.append(f"Ad[{self.reg_id[node.reg]}] = {value}")
        return stmts

    def rule_locals(self, rule):
        locals_ = ["Ld = self._Ld", "Ad = self._Ad"]
        if self.m:
            locals_ += ["Lf = self._Lf", "Af = self._Af"]
        return locals_

    def rule_commit(self, rule):
        info = self.analysis.rules[rule]
        stmts: List[str] = []
        data = sorted(self.reg_id[r] for r in info.data_footprint)
        if len(data) > max(_FOOTPRINT_FALLBACK, (2 * self.n) // 3):
            stmts.append("Ld[:] = Ad")
        else:
            stmts += [f"Ld[{i}] = Ad[{i}]" for i in data]
        flags = sorted(self.flag_slot[r] for r in info.flag_footprint
                       if r in self.flag_slot)
        if len(flags) > max(_FOOTPRINT_FALLBACK, (2 * self.m) // 3):
            stmts.append("Lf[:] = Af")
        else:
            stmts += [f"Lf[{s}] = Af[{s}]" for s in flags]
        stmts.append("return True")
        return stmts

    def fail_stmt(self, rule, effects_so_far):
        if not effects_so_far:
            return "return False"  # early failure: nothing to roll back
        return f"return self._fail_{rule}()"

    def needs_fail_helper(self, rule):
        info = self.analysis.rules[rule]
        return info.may_abort and bool(info.data_footprint or info.flag_footprint)

    def fail_helper_body(self, rule):
        info = self.analysis.rules[rule]
        stmts: List[str] = []
        data = sorted(self.reg_id[r] for r in info.data_footprint)
        flags = sorted(self.flag_slot[r] for r in info.flag_footprint
                       if r in self.flag_slot)
        if data or flags:
            stmts += ["Ld = self._Ld", "Ad = self._Ad"]
        if flags:
            stmts += ["Lf = self._Lf", "Af = self._Af"]
        if len(data) > max(_FOOTPRINT_FALLBACK, (2 * self.n) // 3):
            stmts.append("Ad[:] = Ld")
        else:
            stmts += [f"Ad[{i}] = Ld[{i}]" for i in data]
        if len(flags) > max(_FOOTPRINT_FALLBACK, (2 * self.m) // 3):
            stmts.append("Af[:] = Lf")
        else:
            stmts += [f"Af[{s}] = Lf[{s}]" for s in flags]
        stmts.append("return False")
        return stmts

    def cycle_start(self):
        if not self.m:
            return []
        return ["self._Lf[:] = _FZ", "self._Af[:] = _FZ"]

    def cycle_start_inline(self):
        if not self.m:
            return []
        if self.m <= 8:
            return ([f"Lf[{s}] = 0" for s in range(self.m)]
                    + [f"Af[{s}] = 0" for s in range(self.m)])
        return ["Lf[:] = _FZ", "Af[:] = _FZ"]

    def reset_body(self):
        return [
            "self._Ld = list(self.REG_INIT)",
            "self._Ad = list(self.REG_INIT)",
            f"self._Lf = [0] * {self.m}",
            f"self._Af = [0] * {self.m}",
        ]

    def module_consts(self):
        return [f"_FZ = (0,) * {self.m}"]

    def helper_methods(self) -> List[Tuple[str, List[str]]]:
        return []

    def snapshot_expr(self):
        return ("(list(self._Ld), list(self._Ad), list(self._Lf), "
                "list(self._Af))")

    def restore_body(self):
        return [
            "(self._Ld[:], self._Ad[:], self._Lf[:], self._Af[:]) = snapshot",
        ]


def _make_layout(design: Design, opt: int,
                 analysis: Optional[DesignAnalysis]) -> _Layout:
    if opt == 0:
        return _LayoutO0(design, analysis)
    if opt == 1:
        return _LayoutO1(design, analysis)
    if opt == 2:
        return _LayoutO23(design, analysis, reset_on_failure=False)
    if opt == 3:
        return _LayoutO23(design, analysis, reset_on_failure=True)
    if opt == 4:
        return _LayoutO4(design, analysis)
    if opt == 5:
        return _LayoutO5(design, analysis)
    raise CompileError(f"unknown optimization level O{opt}")


# ----------------------------------------------------------------------
# Expression/action emission.
# ----------------------------------------------------------------------

def _is_atomic(expr: str) -> bool:
    """True for expression texts that are free to duplicate: identifiers and
    the literals ``_hex`` emits (small decimals like ``-5``, and lowercase
    ``hex()`` output like ``0x1f`` / ``-0x1f``).  A bare ``0x``, an empty
    string, or a doubled sign is not a literal and must not be treated as
    one — misclassification here makes hoisting decisions unsound."""
    if expr.isidentifier():
        return True
    body = expr[1:] if expr.startswith("-") else expr
    if body.isdigit():
        return True
    return (len(body) > 2 and body.startswith("0x")
            and all(c in "0123456789abcdef" for c in body[2:]))


def _is_unit_const(node: Action) -> bool:
    return isinstance(node, Const) and node.typ is not None and node.typ.width == 0


class _Emitter:
    """Shared expression emitter.  Subclasses handle effectful nodes."""

    def __init__(self, out: _Builder, meta: _Meta):
        self.out = out
        self.meta = meta
        self._temps = 0
        self.scope: Dict[str, str] = {}
        self._mutates_cache: Dict[int, bool] = {}

    def fresh(self, hint: str = "t") -> str:
        self._temps += 1
        return f"_{hint}{self._temps}"

    def hoist(self, expr: str) -> str:
        """Materialize a non-atomic operand in a temp so the emitted
        template can mention it more than once.  Textual duplication would
        re-evaluate the expression per mention — wasted work at best, and a
        semantic bug when it contains an ``ExtCall`` (the environment must
        see exactly one call, in sequential order)."""
        if _is_atomic(expr):
            return expr
        temp = self.fresh()
        self.line(f"{temp} = {expr}")
        return temp

    def line(self, text: str) -> None:
        self.out.line(text)

    def _mutates(self, node: Action) -> bool:
        # ExtCall counts: external calls must keep their exact sequential
        # call order (the environment may observe them, e.g. output sinks).
        cached = self._mutates_cache.get(node.uid)
        if cached is None:
            cached = any(isinstance(n, (Read, Write, ExtCall))
                         for n in walk(node))
            self._mutates_cache[node.uid] = cached
        return cached

    def _is_pure(self, node: Action) -> bool:
        """Pure enough to inline as a single Python expression (and to drop
        when the value is discarded)."""
        for n in walk(node):
            if isinstance(n, (Write, Abort, Let, Assign, Seq, ExtCall)):
                return False
            if isinstance(n, Read) and not self._read_is_pure(n):
                return False
        return True

    def _read_is_pure(self, node: Read) -> bool:
        return False  # overridden by the rule emitter for O5 / fn emitter

    def emit_ordered(self, children: Sequence[Action]) -> List[str]:
        """Emit children left-to-right, hoisting earlier results to temps
        whenever a later child mutates log state (order preservation)."""
        mutates_after = [False] * (len(children) + 1)
        for i in range(len(children) - 1, -1, -1):
            mutates_after[i] = mutates_after[i + 1] or self._mutates(children[i])
        exprs = []
        for i, child in enumerate(children):
            expr = self.emit(child)
            if mutates_after[i + 1] and not _is_atomic(expr):
                temp = self.fresh()
                self.line(f"{temp} = {expr}")
                expr = temp
            exprs.append(expr)
        return exprs

    # -- dispatch ------------------------------------------------------------
    def emit(self, node: Action) -> str:
        self.meta.uid_line.setdefault(node.uid, self.out.lineno())
        if isinstance(node, Const):
            return _hex(node.value)
        if isinstance(node, Var):
            return self.scope[node.name]
        if isinstance(node, Unop):
            return self._emit_unop(node)
        if isinstance(node, Binop):
            return self._emit_binop(node)
        if isinstance(node, GetField):
            return self._emit_getfield(node)
        if isinstance(node, SubstField):
            return self._emit_substfield(node)
        if isinstance(node, Call):
            exprs = self.emit_ordered(node.args)
            return f"fn_{node.fn}({', '.join(exprs)})"
        if isinstance(node, Let):
            return self._emit_let(node)
        if isinstance(node, Assign):
            expr = self.emit(node.value)
            self.line(f"{self.scope[node.name]} = {expr}")
            return "0"
        if isinstance(node, Seq):
            for action in node.actions[:-1]:
                self.emit_discard(action)
            return self.emit(node.actions[-1])
        if isinstance(node, If):
            return self._emit_if(node)
        if isinstance(node, (Read, Write, Abort, ExtCall)):
            return self._emit_effect(node)
        raise CompileError(f"cannot emit {type(node).__name__}")

    def emit_discard(self, node: Action) -> None:
        """Emit a node whose value is unused."""
        if self._is_pure(node):
            return  # a pure value computed for nothing: drop it entirely
        if isinstance(node, If):
            self._emit_if_stmt(node)
            return
        expr = self.emit(node)
        if any(isinstance(n, ExtCall) for n in walk(node)):
            # The returned expression performs the external call(s); emit it
            # as an expression statement so they actually run.
            self.line(expr)

    def _emit_effect(self, node: Action) -> str:
        raise CompileError(
            f"{node.kind} is not allowed in this context (pure function?)"
        )

    def _emit_let(self, node: Let) -> str:
        expr = self.emit(node.value)
        pyname = self._bind(node.name)
        self.line(f"{pyname} = {expr}")
        saved = self.scope.get(node.name)
        self.scope[node.name] = pyname
        result = self.emit(node.body)
        if saved is not None and saved != pyname:
            self.scope[node.name] = saved
        return result

    def _bind(self, name: str) -> str:
        base = f"v_{name}"
        if self.scope.get(name) == base or base in self.scope.values():
            self._temps += 1
            return f"{base}_{self._temps}"
        return base

    def _emit_unop(self, node: Unop) -> str:
        arg = self.emit(node.arg)
        if node.op == "not":
            return f"({arg} ^ {_hex(mask(node.typ.width))})"
        if node.op == "neg":
            return f"(-{arg} & {_hex(mask(node.typ.width))})"
        if node.op == "zextl":
            return arg
        if node.op == "sextl":
            in_width = node.arg.typ.width
            if in_width == 0:
                return "0"
            sign_bit = _hex(1 << (in_width - 1))
            high = _hex(mask(node.param) - mask(in_width))
            arg = self.hoist(arg)
            return f"(({arg} | {high}) if {arg} & {sign_bit} else {arg})"
        offset, width = node.param
        if offset == 0:
            return f"({arg} & {_hex(mask(width))})"
        return f"(({arg} >> {offset}) & {_hex(mask(width))})"

    def _emit_binop(self, node: Binop) -> str:
        op = node.op
        a_expr, b_expr = self.emit_ordered((node.a, node.b))
        width = node.a.typ.width
        result_mask = _hex(mask(node.typ.width))
        if op == "add":
            return f"(({a_expr} + {b_expr}) & {result_mask})"
        if op == "sub":
            return f"(({a_expr} - {b_expr}) & {result_mask})"
        if op == "mul":
            return f"(({a_expr} * {b_expr}) & {result_mask})"
        if op == "divu":
            b_expr = self.hoist(b_expr)
            return f"(({a_expr} // {b_expr}) if {b_expr} else {result_mask})"
        if op == "remu":
            a_expr = self.hoist(a_expr)
            b_expr = self.hoist(b_expr)
            return f"(({a_expr} % {b_expr}) if {b_expr} else {a_expr})"
        if op == "and":
            return f"({a_expr} & {b_expr})"
        if op == "or":
            return f"({a_expr} | {b_expr})"
        if op == "xor":
            return f"({a_expr} ^ {b_expr})"
        if op in ("eq", "ne", "ltu", "leu", "gtu", "geu"):
            py = {"eq": "==", "ne": "!=", "ltu": "<",
                  "leu": "<=", "gtu": ">", "geu": ">="}[op]
            return f"({a_expr} {py} {b_expr})"
        if op in ("lts", "les", "gts", "ges"):
            py = {"lts": "<", "les": "<=", "gts": ">", "ges": ">="}[op]
            half, full = _hex(1 << (width - 1)), _hex(1 << width)
            return (f"(_sgn({a_expr}, {half}, {full}) {py} "
                    f"_sgn({b_expr}, {half}, {full}))")
        if op == "concat":
            return f"(({a_expr} << {node.b.typ.width}) | {b_expr})"
        if op == "sll":
            if isinstance(node.b, Const):
                if node.b.value >= width:
                    return "0"
                return f"(({a_expr} << {node.b.value}) & {result_mask})"
            b_expr = self.hoist(b_expr)
            return (f"((({a_expr} << {b_expr}) & {result_mask}) "
                    f"if {b_expr} < {width} else 0)")
        if op == "srl":
            if isinstance(node.b, Const):
                return "0" if node.b.value >= width else f"({a_expr} >> {node.b.value})"
            b_expr = self.hoist(b_expr)
            return f"(({a_expr} >> {b_expr}) if {b_expr} < {width} else 0)"
        if op == "sra":
            half, full = _hex(1 << (width - 1)), _hex(1 << width)
            if isinstance(node.b, Const):
                shift = str(min(node.b.value, width))
            else:
                b_expr = self.hoist(b_expr)
                shift = f"{b_expr} if {b_expr} < {width} else {width}"
            return (f"((_sgn({a_expr}, {half}, {full}) >> ({shift})) "
                    f"& {result_mask})")
        if op == "sel":
            if isinstance(node.b, Const):
                if node.b.value >= width:
                    return "0"
                return f"(({a_expr} >> {node.b.value}) & 1)"
            b_expr = self.hoist(b_expr)
            return f"((({a_expr} >> {b_expr}) & 1) if {b_expr} < {width} else 0)"
        raise CompileError(f"unknown binop {op!r}")

    def _emit_getfield(self, node: GetField) -> str:
        arg = self.emit(node.arg)
        struct = node.arg.typ
        assert isinstance(struct, StructType)
        offset = struct.field_offset(node.field_name)
        width = struct.field_type(node.field_name).width
        if offset == 0:
            return f"({arg} & {_hex(mask(width))})"
        return f"(({arg} >> {offset}) & {_hex(mask(width))})"

    def _emit_substfield(self, node: SubstField) -> str:
        arg_expr, value_expr = self.emit_ordered((node.arg, node.value))
        struct = node.arg.typ
        assert isinstance(struct, StructType)
        offset = struct.field_offset(node.field_name)
        width = struct.field_type(node.field_name).width
        clear = _hex(mask(struct.width) ^ (mask(width) << offset))
        if offset == 0:
            return f"(({arg_expr} & {clear}) | {value_expr})"
        return f"(({arg_expr} & {clear}) | ({value_expr} << {offset}))"

    def _emit_if(self, node: If) -> str:
        if node.orelse is not None and self._is_pure(node):
            cond = self.emit(node.cond)
            then = self.emit(node.then)
            orelse = self.emit(node.orelse)
            return f"({then} if {cond} else {orelse})"
        if node.typ is not None and node.typ.width == 0:
            self._emit_if_stmt(node)
            return "0"
        # Statement form with a result temp.
        temp = self.fresh()
        cond = self.emit(node.cond)
        self.line(f"if {cond}:")
        self._branch(node.then, temp, node, "then")
        self.line("else:")
        assert node.orelse is not None
        self._branch(node.orelse, temp, node, "else")
        return temp

    def _branch(self, body: Action, temp: Optional[str], node: If,
                kind: str) -> None:
        self.out.indent += 1
        self._branch_depth = getattr(self, "_branch_depth", 0) + 1
        self._enter_block(kind, node.uid)
        if temp is None:
            before = len(self.out.lines)
            self.emit_discard(body)
            if len(self.out.lines) == before and not self._block_marks():
                self.line("pass")
        else:
            expr = self.emit(body)
            self.line(f"{temp} = {expr}")
        self.out.indent -= 1
        self._branch_depth -= 1
        self._exit_block()

    def _emit_if_stmt(self, node: If) -> None:
        """If whose value is unit/discarded, emitted as a statement."""
        then_trivial = _is_unit_const(node.then) or (
            self._is_pure(node.then) and not isinstance(node.then, Abort))
        orelse_trivial = node.orelse is None or _is_unit_const(node.orelse) or (
            self._is_pure(node.orelse) and not isinstance(node.orelse, Abort))
        # Peepholes for guards: `if (!cond) abort` reads like the paper's
        # models (`if (READ0(st) != A) return false;`).
        if isinstance(node.orelse, Abort) and then_trivial:
            cond = self.emit(node.cond)
            self.line(f"if not {cond}:")
            self._abort_branch(node.orelse)
            self._reblock(node.uid)
            return
        if isinstance(node.then, Abort) and orelse_trivial:
            cond = self.emit(node.cond)
            self.line(f"if {cond}:")
            self._abort_branch(node.then)
            self._reblock(node.uid)
            return
        cond = self.emit(node.cond)
        if then_trivial and not orelse_trivial:
            self.line(f"if not {cond}:")
            self._branch(node.orelse, None, node, "else")
            self._reblock(node.uid)
            return
        self.line(f"if {cond}:")
        self._branch(node.then, None, node, "then")
        if not orelse_trivial:
            self.line("else:")
            self._branch(node.orelse, None, node, "else")
        self._reblock(node.uid)

    def _abort_branch(self, node: Abort) -> None:
        self.out.indent += 1
        self._enter_block("fail", node.uid)
        self.emit(node)
        self.out.indent -= 1
        self._exit_block()

    # Block hooks (only the rule emitter implements coverage counters).
    def _enter_block(self, kind: str, uid: Optional[int]) -> None:
        pass

    def _reblock(self, uid: Optional[int]) -> None:
        pass

    def _exit_block(self) -> None:
        pass

    def _block_marks(self) -> bool:
        return False


class _FnEmitter(_Emitter):
    """Emits a pure design function as a module-level Python function."""

    def _read_is_pure(self, node: Read) -> bool:  # pragma: no cover
        return True

    def emit_fn(self, fn: Fn) -> None:
        args = ", ".join(f"v_{name}" for name, _ in fn.args)
        self.line(f"def fn_{fn.name}({args}):")
        self.out.indent += 1
        self.scope = {name: f"v_{name}" for name, _ in fn.args}
        expr = self.emit(fn.body)
        self.line(f"return {expr}")
        self.out.indent -= 1
        self.line("")


class _RuleEmitter(_Emitter):
    """Emits one rule as a model method returning True (commit) / False."""

    def __init__(self, out: _Builder, meta: _Meta, design: Design,
                 layout: _Layout, rule: Rule, instrument: bool, debug: bool,
                 inline: bool = False):
        super().__init__(out, meta)
        self.design = design
        self.layout = layout
        self.rule = rule
        self.instrument = instrument
        self.debug = debug
        #: Inline mode: the rule body is emitted inside ``_cycle`` wrapped
        #: in ``while True:``; returns become breaks (what a C++ compiler's
        #: inlining does to the paper's models for free).
        self.inline = inline
        self.effects = False
        self._block_stack: List[Optional[int]] = []
        self._marked = False
        #: Read checks consult only the cycle log, which is constant for
        #: the whole rule, so a check that already ran unconditionally (at
        #: branch depth 0) never needs repeating.
        self._branch_depth = 0
        self._reads_checked: set = set()

    def _emit_exit(self, return_stmt: str) -> None:
        """Emit a rule exit: verbatim in method mode, translated to
        (call +) ``break`` in inline mode."""
        if not self.inline:
            self.line(return_stmt)
            return
        if return_stmt in ("return False", "return True"):
            self.line("break")
            return
        assert return_stmt.startswith("return ")
        self.line(return_stmt[len("return "):])
        self.line("break")

    # -- coverage blocks -------------------------------------------------------
    def _new_block(self, kind: str, uid: Optional[int]) -> int:
        block_id = len(self.meta.blocks)
        self.meta.blocks.append((block_id, self.rule.name, kind, uid))
        return block_id

    def _enter_block(self, kind: str, uid: Optional[int]) -> None:
        if not self.instrument:
            return
        self._block_stack.append(self.out.current_block)
        block_id = self._new_block(kind, uid)
        self.out.current_block = block_id
        self.line(f"_c[{block_id}] += 1")
        self._marked = True

    def _exit_block(self) -> None:
        if not self.instrument:
            return
        self.out.current_block = self._block_stack.pop()

    def _reblock(self, uid: Optional[int]) -> None:
        """Start a fresh basic block (gcov-style): the continuation after a
        possibly-returning construct gets its own counter, so e.g. the code
        after an early guard shows the guard's pass count."""
        if not self.instrument:
            return
        block_id = self._new_block("join", uid)
        self.out.current_block = block_id
        self.line(f"_c[{block_id}] += 1")

    def _block_marks(self) -> bool:
        if self._marked:
            self._marked = False
            return True
        return False

    # -- effectful nodes ---------------------------------------------------------
    def _read_is_pure(self, node: Read) -> bool:
        if self.debug:
            return False
        layout = self.layout
        if isinstance(layout, _LayoutO5):
            return (layout.node_read_check(node) is None
                    and not layout.node_read_flag_stmts(node))
        return False

    def _emit_effect(self, node: Action) -> str:
        if isinstance(node, Read):
            return self._emit_read(node)
        if isinstance(node, Write):
            return self._emit_write(node)
        if isinstance(node, Abort):
            return self._emit_abort(node)
        if isinstance(node, ExtCall):
            return self._emit_extcall(node)
        raise CompileError(f"cannot emit {type(node).__name__}")

    def _emit_read(self, node: Read) -> str:
        layout = self.layout
        name = node.reg
        i = layout.reg_id[name]
        if isinstance(layout, _LayoutO5):
            check = layout.node_read_check(node)
            flag_stmts = layout.node_read_flag_stmts(node)
            value = layout.node_read_value(node)
        else:
            check = layout.read_check(i, node.port)
            flag_stmts = layout.read_flag_stmts(i, node.port)
            value = layout.read_value(i, node.port)
        if check is not None and (name, node.port) not in self._reads_checked:
            self.line(f"if {check}:  # {name}.rd{node.port} conflict")
            self._emit_fail_body(node.uid, name, f"rd{node.port}")
            self._reblock(node.uid)
            if self._branch_depth == 0:
                self._reads_checked.add((name, node.port))
        for stmt in flag_stmts:
            self.line(stmt)
            self.effects = True
        if self.debug:
            temp = self.fresh("r")
            self.line(f"{temp} = {value}  # {name}.rd{node.port}")
            self.line(f"if _h: _h('read', {node.uid}, {name!r}, "
                      f"{node.port}, {temp})")
            return temp
        return value

    def _emit_write(self, node: Write) -> str:
        value_expr = self.emit(node.value)
        if self.debug:
            # The debug hook below mentions the value a second time; an
            # impure value (ExtCall) must still reach the environment
            # exactly once.
            value_expr = self.hoist(value_expr)
        layout = self.layout
        name = node.reg
        i = layout.reg_id[name]
        if isinstance(layout, _LayoutO5):
            check = layout.node_write_check(node)
            stmts = layout.node_write_stmts(node, value_expr)
        else:
            check = layout.write_check(i, node.port)
            stmts = layout.write_stmts(i, node.port, value_expr)
        if check is not None:
            self.line(f"if {check}:  # {name}.wr{node.port} conflict")
            self._emit_fail_body(node.uid, name, f"wr{node.port}")
            self._reblock(node.uid)
        for index, stmt in enumerate(stmts):
            comment = f"  # {name}.wr{node.port}" if index == len(stmts) - 1 else ""
            self.line(stmt + comment)
        self.effects = True
        if self.debug:
            self.line(f"if _h: _h('write', {node.uid}, {name!r}, "
                      f"{node.port}, {value_expr})")
        return "0"

    def _emit_abort(self, node: Abort) -> str:
        if self.instrument and self.out.current_block is not None:
            pass  # fail blocks are created by the caller via _abort_branch
        if self.debug:
            self.line(f"if _h: _h('fail', {node.uid}, None, 'abort', "
                      f"{self.rule.name!r})")
        self._emit_exit(self.layout.fail_stmt(self.rule.name, self.effects))
        return "0"

    def _emit_fail_body(self, uid: int, register: str, operation: str) -> None:
        self.out.indent += 1
        self._enter_block("fail", uid)
        if self.debug:
            self.line(f"if _h: _h('fail', {uid}, {register!r}, "
                      f"{operation!r}, {self.rule.name!r})")
        self._emit_exit(self.layout.fail_stmt(self.rule.name, self.effects))
        self.out.indent -= 1
        self._exit_block()

    def _emit_extcall(self, node: ExtCall) -> str:
        arg = self.emit(node.arg)
        ret_mask = _hex(mask(node.typ.width))
        return f"(self._ext_{node.fn}({arg}) & {ret_mask})"

    # -- whole rule ---------------------------------------------------------------
    def emit_rule(self) -> None:
        rule = self.rule
        if self.inline:
            self.line(f"# rule {rule.name}")
            self.line("while True:")
        else:
            self.line(f"def rule_{rule.name}(self):")
        self.out.indent += 1
        if not self.inline:
            for alias in self.layout.rule_locals(rule.name):
                self.line(alias)
            if self.instrument:
                self.line("_c = self._cov")
        if self.debug:
            self.line("_h = self._hook")
            self.line(f"if _h: _h('rule', {rule.name!r})")
        self._enter_block("rule", None)
        for stmt in self.layout.rule_entry(rule.name):
            self.line(stmt)
        self.emit_discard(rule.body)
        self._enter_block("commit", None)
        if self.debug:
            self.line(f"if _h: _h('commit', {rule.name!r})")
        for stmt in self.layout.rule_commit(rule.name):
            self._emit_exit(stmt) if stmt.startswith("return ") \
                else self.line(stmt)
        if self.inline and not self._ends_with_break():
            self.line("break")
        self._exit_block()
        self._exit_block()
        self.out.indent -= 1
        if not self.inline:
            self.line("")

    def _ends_with_break(self) -> bool:
        for text in reversed(self.out.lines):
            stripped = text.strip()
            if stripped:
                return stripped == "break"
        return False


# ----------------------------------------------------------------------
# Whole-module generation.
# ----------------------------------------------------------------------

def generate_source(design: Design, opt: int = 5, instrument: bool = False,
                    debug: bool = False,
                    analysis: Optional[DesignAnalysis] = None,
                    inline_rules: Optional[bool] = None) -> Tuple[str, _Meta]:
    """Generate the Python source of a Cuttlesim model for ``design``.

    ``inline_rules`` controls whether the fast-path ``_cycle`` inlines
    every rule body (the Python analogue of the C++ compiler inlining the
    paper's models rely on).  Defaults to on, except for instrumented or
    debug builds, where per-rule methods keep the tooling simple.
    """
    if inline_rules is None:
        inline_rules = not (instrument or debug)
    if not design.finalized:
        design.finalize()
    if opt >= 5 and analysis is None:
        analysis = analyze(design)
    layout = _make_layout(design, opt, analysis)
    out = _Builder()
    meta = _Meta()

    out.line(f'"""Cuttlesim model for design {design.name!r} '
             f'(optimization level O{opt}).')
    out.line("")
    out.line("Auto-generated; one method per rule, `_cycle` is the scheduler.")
    out.line("Reads/writes follow Koika's port semantics; `return False`")
    out.line("aborts the current rule (early exit), `return True` commits.")
    if analysis is not None and opt >= 5:
        out.line("")
        out.line(f"Static analysis: {analysis.summary()}")
    out.line('"""')
    out.line("")
    out.line("def _sgn(v, half, full):")
    out.line("    return v - full if v >= half else v")
    out.line("")
    masks = ", ".join(_hex(mask(r.typ.width)) for r in design.registers.values())
    out.line(f"_RM = ({masks}{',' if len(design.registers) == 1 else ''})")
    for const in layout.module_consts():
        out.line(const)
    out.line("")

    for fn in design.fns.values():
        emitter = _FnEmitter(out, meta)
        emitter.emit_fn(fn)

    out.line("class Model(ModelBase):")
    out.indent += 1
    out.line(f"DESIGN_NAME = {design.name!r}")
    out.line(f"OPT_LEVEL = {opt}")
    reg_names = tuple(design.registers)
    out.line(f"REG_NAMES = {reg_names!r}")
    out.line(f"REG_INIT = {tuple(r.init for r in design.registers.values())!r}")
    out.line(f"REG_IDS = {dict((n, i) for i, n in enumerate(reg_names))!r}")
    out.line(f"RULE_NAMES = {tuple(design.scheduler)!r}")
    out.line("")

    extfuns = sorted(design.extfuns)
    if extfuns:
        out.line("def _bind_extfuns(self):")
        out.indent += 1
        for name in extfuns:
            out.line(f"self._ext_{name} = self._env.resolve({name!r})")
        out.indent -= 1
        out.line("")

    out.line("def reset(self):")
    out.indent += 1
    out.line("self.cycle = 0")
    for stmt in layout.reset_body():
        out.line(stmt)
    out.indent -= 1
    out.line("")

    for rule in design.scheduled_rules():
        emitter = _RuleEmitter(out, meta, design, layout, rule, instrument, debug)
        emitter.emit_rule()
        if layout.needs_fail_helper(rule.name):
            out.line(f"def _fail_{rule.name}(self):")
            out.indent += 1
            for stmt in layout.fail_helper_body(rule.name):
                out.line(stmt)
            out.indent -= 1
            out.line("")

    for name, body in getattr(layout, "helper_methods", lambda: [])():
        out.line(f"def {name}(self):")
        out.indent += 1
        for stmt in body:
            out.line(stmt)
        out.indent -= 1
        out.line("")

    # The scheduler, fast path and reporting/ordered variants.
    def emit_cycle(name: str, report: bool) -> None:
        out.line(f"def {name}(self):")
        out.indent += 1
        out.line("env = self._env")
        out.line("env.before_cycle(self)")
        if report or not inline_rules:
            for stmt in layout.cycle_start():
                out.line(stmt)
        if report:
            out.line("committed = []")
        if not report and inline_rules:
            # Whole-cycle inlining: bind the log aliases once, then paste
            # every rule body (wrapped in `while True:` so failure paths
            # `break` out — the cost model of the paper's inlined C++).
            for alias in layout.rule_locals(""):
                out.line(alias)
            for stmt in layout.cycle_start_inline():
                out.line(stmt)
            for rule in design.scheduled_rules():
                emitter = _RuleEmitter(out, meta, design, layout, rule,
                                       instrument=False, debug=False,
                                       inline=True)
                emitter.emit_rule()
        else:
            for rule_name in design.scheduler:
                if report:
                    out.line(f"if self.rule_{rule_name}():")
                    out.line(f"    committed.append({rule_name!r})")
                else:
                    out.line(f"self.rule_{rule_name}()")
        for stmt in layout.cycle_end():
            out.line(stmt)
        out.line("self.cycle += 1")
        out.line("env.after_cycle(self)")
        if report:
            out.line("return committed")
        out.indent -= 1
        out.line("")

    emit_cycle("_cycle", report=False)
    emit_cycle("_cycle_report", report=True)

    out.line("def _cycle_ordered(self, methods):")
    out.indent += 1
    out.line("env = self._env")
    out.line("env.before_cycle(self)")
    for stmt in layout.cycle_start():
        out.line(stmt)
    out.line("committed = []")
    out.line("for name, method in methods:")
    out.line("    if method():")
    out.line("        committed.append(name)")
    for stmt in layout.cycle_end():
        out.line(stmt)
    out.line("self.cycle += 1")
    out.line("env.after_cycle(self)")
    out.line("return committed")
    out.indent -= 1
    out.line("")

    out.line("def _get_reg(self, i):")
    out.line(f"    return {layout.get_reg()}")
    out.line("")
    out.line("def _set_reg(self, i, value):")
    out.indent += 1
    for stmt in layout.set_reg():
        out.line(stmt)
    out.indent -= 1
    out.line("")
    out.line("def _peek_spec(self, i):")
    out.line(f"    return {layout.peek_spec()}")
    out.line("")
    out.line("def _snapshot(self):")
    out.line(f"    return {layout.snapshot_expr()}")
    out.line("")
    out.line("def _restore(self, snapshot):")
    out.indent += 1
    for stmt in layout.restore_body():
        out.line(stmt)
    out.indent -= 1
    out.indent -= 1

    meta.line_block = list(out.line_block)
    return out.source(), meta


_compile_counter = 0

#: Bump whenever the emitter's output changes; part of every model-cache
#: key so stale on-disk entries are never replayed by a newer compiler.
CODEGEN_VERSION = 2


def _finish_class(source: str, meta: _Meta, design: Design, opt: int,
                  host_optimize: int, analysis: Optional[DesignAnalysis]):
    """Compile + exec generated source into a model class and attach the
    metadata tables.  Shared by the cold path and cache-hit loads."""
    global _compile_counter
    _compile_counter += 1
    filename = f"<cuttlesim:{design.name}-O{opt}#{_compile_counter}>"
    namespace: Dict[str, object] = {"ModelBase": ModelBase}
    try:
        code = compile(source, filename, "exec", optimize=host_optimize)
    except SyntaxError as exc:  # pragma: no cover - compiler bug guard
        raise CompileError(
            f"generated model failed to parse ({exc}); source:\n{source}"
        ) from exc
    exec(code, namespace)
    cls = namespace["Model"]
    cls.SOURCE = source
    cls.N_COV = len(meta.blocks)
    cls.COV_BLOCKS = tuple(meta.blocks)
    cls.META = meta
    cls.ANALYSIS = analysis
    cls.DESIGN = design
    cls.REG_TYPES = tuple(r.typ for r in design.registers.values())
    cls.FILENAME = filename
    linecache.cache[filename] = (len(source), None,
                                 source.splitlines(True), filename)
    # Long-running sweep services compile thousands of models; drop the
    # linecache entry once nothing references the class any more, instead
    # of accumulating pseudo-files forever.
    weakref.finalize(cls, linecache.cache.pop, filename, None)
    return cls


def compile_model(design: Design, opt: int = 5, instrument: bool = False,
                  debug: bool = False, order_independent: bool = False,
                  warn_goldberg: bool = True, inline_rules=None,
                  host_optimize: int = -1, simplify: bool = False,
                  cache=None, batch: int = 0, batch_backend: str = "auto"):
    """Compile a design into a Cuttlesim model class.

    Returns the class; instantiate with an :class:`Environment` to simulate.
    ``order_independent=True`` makes the O5 analysis sound for any rule
    order (required before using ``run_cycle(order=...)`` with O5 models).
    ``host_optimize`` is forwarded to the host compiler (CPython's
    ``compile(optimize=...)``) — the knob Figure 3's toolchain-sensitivity
    experiment turns, standing in for the paper's GCC-vs-Clang axis.

    ``cache`` enables the content-addressed model cache: pass a
    :class:`repro.cuttlesim.cache.ModelCache`, or ``True`` for the shared
    process-default cache.  Warm loads skip analysis and emission (and, on
    in-process hits, ``compile``/``exec`` too).  Instrumented and debug
    builds always compile cold — their metadata embeds AST-node uids that
    are only meaningful for the exact design object they were generated
    from.  On a cache hit ``warn_goldberg`` warnings are not re-issued and
    ``cls.ANALYSIS`` is ``None``.

    ``batch=B`` (B >= 1) compiles a width-B **lockstep** model instead: B
    independent trials simulated by one class deriving from
    :class:`repro.cuttlesim.model.BatchModelBase` (see
    :mod:`repro.cuttlesim.batch`).  ``batch_backend`` selects the lane
    representation (``"auto"``, ``"numpy"`` or ``"list"``).  Batched
    builds follow the O2 semantics family and reject ``instrument``,
    ``debug``, ``simplify`` and ``inline_rules``.
    """
    if not design.finalized:
        design.finalize()
    if batch:
        if instrument or debug or simplify or inline_rules:
            raise CompileError(
                "batched lockstep models do not support instrument/debug/"
                "simplify/inline_rules; compile a scalar model for those")
        from .batch import compile_batch_model

        return compile_batch_model(design, batch, backend=batch_backend,
                                   cache=cache, host_optimize=host_optimize)
    store = None
    key = None
    if cache is not None and not (instrument or debug):
        from .cache import resolve_cache

        store = resolve_cache(cache)
        key = store.key_for(design, opt=opt, order_independent=order_independent,
                            simplify=simplify, inline_rules=inline_rules,
                            host_optimize=host_optimize)
        cls = store.lookup_class(key)
        if cls is not None:
            return cls
        entry = store.lookup_source(key)
        if entry is not None:
            source, meta = entry
            cls = _finish_class(source, meta, design, opt, host_optimize,
                                analysis=None)
            store.store_class(key, cls)
            return cls
    if simplify:
        from ..koika.simplify import simplify_design

        design = simplify_design(design)
    analysis = None
    if opt >= 5:
        analysis = analyze(design, order_independent=order_independent)
        if warn_goldberg and opt >= 4:
            for warning in analysis.goldberg_warnings:
                import warnings

                warnings.warn(warning, stacklevel=2)
    source, meta = generate_source(design, opt=opt, instrument=instrument,
                                   debug=debug, analysis=analysis,
                                   inline_rules=inline_rules)
    cls = _finish_class(source, meta, design, opt, host_optimize, analysis)
    if store is not None:
        store.store_source(key, source, meta, design_name=design.name, opt=opt)
        store.store_class(key, cls)
    return cls
