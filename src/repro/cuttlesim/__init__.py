"""Cuttlesim: compilation of Koika designs to fast sequential models."""

from .codegen import compile_model, generate_source
from .model import ModelBase

__all__ = ["compile_model", "generate_source", "ModelBase"]
