"""Cuttlesim: compilation of Koika designs to fast sequential models."""

from .batch import (BATCH_CODEGEN_VERSION, compile_batch_model,
                    generate_batch_source, resolve_batch_backend)
from .cache import (CacheStats, ModelCache, design_fingerprint,
                    get_default_cache, reset_default_cache)
from .codegen import (CODEGEN_VERSION, compile_model, compile_model_prefix,
                      generate_source)
from .model import BatchModelBase, LaneView, ModelBase

__all__ = ["BATCH_CODEGEN_VERSION", "CODEGEN_VERSION", "CacheStats",
           "ModelCache", "compile_batch_model", "compile_model",
           "compile_model_prefix", "design_fingerprint",
           "generate_batch_source", "generate_source", "get_default_cache",
           "reset_default_cache", "resolve_batch_backend",
           "BatchModelBase", "LaneView", "ModelBase"]
