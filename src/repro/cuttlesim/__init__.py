"""Cuttlesim: compilation of Koika designs to fast sequential models."""

from .cache import (CacheStats, ModelCache, design_fingerprint,
                    get_default_cache, reset_default_cache)
from .codegen import CODEGEN_VERSION, compile_model, generate_source
from .model import ModelBase

__all__ = ["CODEGEN_VERSION", "CacheStats", "ModelCache", "compile_model",
           "design_fingerprint", "generate_source", "get_default_cache",
           "reset_default_cache", "ModelBase"]
