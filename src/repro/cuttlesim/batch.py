"""Batched lockstep execution: simulate B independent trials in one model.

The per-process fleet pays one interpreter start-up, one model compile (or
cache load) and one process per trial.  Most sweep/fuzz workloads run the
*same design* many times with different initial states, so the marginal
cost of a trial should be a handful of vector operations, not a process.
This module compiles a design into a **width-B lockstep model**: every
register becomes a length-B lane vector, rule bodies are vectorized, and
the early-exit control flow of the sequential model (``return False`` on a
conflict) becomes per-lane *activity masks* — the bulk-synchronous
execution style of Manticore, grafted onto Cuttlesim's O2 log layout.

Both backends consume the same mid-level IR as the scalar compiler: the
design is lowered once through :func:`~.passes.batch_pipeline` (lowering
plus read-check dedup; the O2 layout decision lives in the emitters here)
and the resulting module drives either emitter.  No lowering decision —
evaluation order, struct offsets, shadowed-name spelling — is re-derived
in this file.

Two backends share one semantics:

* ``numpy`` — lanes are ``uint64`` arrays; rule bodies lower to masked
  vector ops (``_np.where`` for conditionals, masked stores for the
  rwset/log updates).  Chosen automatically when NumPy is importable and
  every value in the design fits :data:`NUMPY_MAX_WIDTH` bits (so all
  arithmetic is exact in ``uint64`` without multi-word emulation).
* ``list`` — lanes are plain Python lists; each rule reuses the scalar
  emitter per lane (``rule_r_lane(self, _k)``) under a thin lockstep
  wrapper.  Always available; also the fallback for wide designs.

Data-dependent external calls cannot be vectorized (each lane's
environment must observe exactly one call, in order), so they take a
**scalar drain**: the argument vector is materialized and the still-active
lanes are drained one by one through their own environment's callable.

Lane-by-lane, a batched run is byte-identical to B serial runs — that is
checked by the differential fuzz oracle, which registers the batched tier
as another backend (see ``repro.fuzz.executor.verify_design``).
"""

from __future__ import annotations

import linecache
import weakref
from typing import Dict, List, Optional, Sequence, Tuple

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via backend="list"
    _np = None

from ..errors import CompileError
from ..koika.ast import walk
from ..koika.design import Design
from ..koika.types import mask
from . import ir
from .codegen import (
    _Builder,
    _Emitter,
    _FnEmitter,
    _hex,
    _Layout,
    _Meta,
    _RuleEmitter,
)
from .model import BatchModelBase
from .passes import batch_pipeline, run_pipeline

#: Bump whenever the batched emitters' output changes; folded into model
#: cache keys (alongside CODEGEN_VERSION) so stale entries never replay.
BATCH_CODEGEN_VERSION = 2

#: Widest value (register or intermediate) the NumPy backend accepts: all
#: lane arithmetic happens in uint64, and products/concats of two
#: ``<= 32``-bit values are exact without multi-word carries.
NUMPY_MAX_WIDTH = 32


# ----------------------------------------------------------------------
# NumPy lane runtime (injected into the generated module's namespace).
# ----------------------------------------------------------------------
#
# Every helper is *total*: the vector model evaluates both sides of every
# branch and keeps computing for aborted lanes, so a division by zero or
# an oversized shift amount in a dead/untaken lane must produce garbage,
# not an exception.  All values are uint64; subtraction and negation go
# through the two's complement within the result width so no intermediate
# ever wraps at 64 bits (inputs are < 2**NUMPY_MAX_WIDTH).

if _np is not None:
    _DT = _np.uint64

    def _u(x):
        """Coerce a lane value (array, bool array or Python int) to uint64."""
        return _np.asarray(x, _DT)

    def _bv(x, n):
        """Coerce a condition to a length-``n`` boolean lane vector."""
        a = _np.asarray(x)
        if a.ndim == 0:
            return _np.full(n, bool(a))
        return a != 0

    def _vsub(a, b, m):
        return (_u(a) + ((_u(b) ^ _DT(m)) + _DT(1))) & _DT(m)

    def _vneg(a, m):
        return ((_u(a) ^ _DT(m)) + _DT(1)) & _DT(m)

    def _vsxt(a, sign, high):
        aa = _u(a)
        return _np.where((aa & _DT(sign)) != 0, aa | _DT(high), aa)

    def _vdiv(a, b, m):
        bb = _u(b)
        return _np.where(bb != 0, _u(a) // _np.maximum(bb, _DT(1)), _DT(m))

    def _vrem(a, b):
        aa, bb = _u(a), _u(b)
        return _np.where(bb != 0, aa % _np.maximum(bb, _DT(1)), aa)

    def _veq(a, b):
        return (_u(a) == _u(b)).astype(_DT)

    def _vne(a, b):
        return (_u(a) != _u(b)).astype(_DT)

    def _vltu(a, b):
        return (_u(a) < _u(b)).astype(_DT)

    def _vleu(a, b):
        return (_u(a) <= _u(b)).astype(_DT)

    def _vgtu(a, b):
        return (_u(a) > _u(b)).astype(_DT)

    def _vgeu(a, b):
        return (_u(a) >= _u(b)).astype(_DT)

    # Signed comparisons: xor-ing the sign bit maps two's complement order
    # onto unsigned order.
    def _vlts(a, b, half):
        return ((_u(a) ^ _DT(half)) < (_u(b) ^ _DT(half))).astype(_DT)

    def _vles(a, b, half):
        return ((_u(a) ^ _DT(half)) <= (_u(b) ^ _DT(half))).astype(_DT)

    def _vgts(a, b, half):
        return ((_u(a) ^ _DT(half)) > (_u(b) ^ _DT(half))).astype(_DT)

    def _vges(a, b, half):
        return ((_u(a) ^ _DT(half)) >= (_u(b) ^ _DT(half))).astype(_DT)

    def _vshl(a, b, w, m):
        bb = _u(b)
        return _np.where(bb < _DT(w),
                         (_u(a) << _np.minimum(bb, _DT(63))) & _DT(m),
                         _DT(0))

    def _vshr(a, b, w):
        bb = _u(b)
        return _np.where(bb < _DT(w),
                         _u(a) >> _np.minimum(bb, _DT(63)),
                         _DT(0))

    def _vsar(a, b, w, sign, m):
        aa = _u(a)
        bb = _np.minimum(_u(b), _DT(w))
        shifted = aa >> bb
        fill = (_DT(m) >> bb) ^ _DT(m)
        return _np.where((aa & _DT(sign)) != 0, shifted | fill, shifted)

    def _vselbit(a, b, w):
        bb = _u(b)
        return _np.where(bb < _DT(w),
                         (_u(a) >> _np.minimum(bb, _DT(63))) & _DT(1),
                         _DT(0))

    def _ow(dst, bits, m):
        """Masked flag update: ``dst[m] |= bits`` without fancy indexing."""
        _np.bitwise_or(dst, _np.uint8(bits), out=dst, where=m)

    def _st(dst, value, m):
        """Masked store of a lane value into a uint64 row."""
        _np.copyto(dst, _u(value), where=m)

    _NUMPY_RUNTIME: Dict[str, object] = {
        "_np": _np, "_DT": _DT, "_u": _u, "_bv": _bv,
        "_vsub": _vsub, "_vneg": _vneg, "_vsxt": _vsxt,
        "_vdiv": _vdiv, "_vrem": _vrem,
        "_veq": _veq, "_vne": _vne, "_vltu": _vltu, "_vleu": _vleu,
        "_vgtu": _vgtu, "_vgeu": _vgeu, "_vlts": _vlts, "_vles": _vles,
        "_vgts": _vgts, "_vges": _vges,
        "_vshl": _vshl, "_vshr": _vshr, "_vsar": _vsar,
        "_vselbit": _vselbit, "_ow": _ow, "_st": _st,
    }
else:  # pragma: no cover - numpy present in the dev/CI toolchain
    _NUMPY_RUNTIME = {}


def max_value_width(design: Design) -> int:
    """Widest register or intermediate value anywhere in ``design``."""
    width = 0
    for register in design.registers.values():
        width = max(width, register.typ.width)
    for ext in design.extfuns.values():
        width = max(width, ext.arg_type.width, ext.ret_type.width)
    bodies = [rule.body for rule in design.rules.values()]
    bodies += [fn.body for fn in design.fns.values()]
    for body in bodies:
        for node in walk(body):
            if node.typ is not None:
                width = max(width, node.typ.width)
    return width


def resolve_batch_backend(design: Design, backend: str = "auto") -> str:
    """Pick the lane backend: ``numpy`` when importable and every value in
    the design fits uint64 arithmetic, else the ``list`` fallback."""
    if backend not in ("auto", "numpy", "list"):
        raise CompileError(f"unknown batch backend {backend!r} "
                           f"(expected 'auto', 'numpy' or 'list')")
    if backend == "list":
        return "list"
    feasible = _np is not None and max_value_width(design) <= NUMPY_MAX_WIDTH
    if backend == "numpy":
        if _np is None:
            raise CompileError("batch backend 'numpy' requested but numpy "
                               "is not importable")
        if not feasible:
            raise CompileError(
                f"batch backend 'numpy' requires every value to fit "
                f"{NUMPY_MAX_WIDTH} bits; design {design.name!r} has wider "
                f"values (use backend='list' or 'auto')")
        return "numpy"
    return "numpy" if feasible else "list"


def _rule_footprint(rule: ir.RuleIR, reg_id: Dict[str, int]) -> List[int]:
    """Register rows the rule touches (reads or writes).  Entry copies and
    commits are restricted to these rows: the accumulated (A) rows are
    only ever consulted for registers the rule itself references, and the
    cycle-log (L) rows are authoritative at all times."""
    regs = set()
    for stmt in ir.walk_stmts(rule.body):
        if isinstance(stmt, (ir.SRead, ir.SWrite)):
            regs.add(stmt.reg)
    return sorted(reg_id[name] for name in regs)


# ----------------------------------------------------------------------
# NumPy backend: masked-vector emitters.
# ----------------------------------------------------------------------

class _VectorOps:
    """IR spelling shared by the vector rule and fn emitters.

    ``self._conj`` is the boolean lane vector of the enclosing branch
    conditions (``None`` at body top level): conditionals execute *both*
    branches with complementary conjunctions instead of branching, and
    local assignments under a conjunction become masked merges.  The
    pending-fusion machinery of the scalar :class:`~.codegen._Emitter` is
    inherited unchanged — the barriers' correctness argument carries over
    because masked execution is straight-line (arms always execute, so a
    materialization inside an "arm" is still evaluated exactly once)."""

    _conj: Optional[str] = None
    lanes: int = 0

    def _fresh_and(self, a: str, b: str) -> str:
        temp = self.fresh("m")
        self.line(f"{temp} = {a} & {b}")
        return temp

    # -- operators -------------------------------------------------------
    def _emit_unop(self, node: ir.IUn) -> str:
        op = node.op
        if op == "neg":
            arg = self.use(node.a)
            return f"_vneg({arg}, {_hex(mask(node.width))})"
        if op == "sextl":
            arg = self.use(node.a)
            in_width = node.a_width
            sign_bit = _hex(1 << (in_width - 1))
            high = _hex(mask(node.param) - mask(in_width))
            return f"_vsxt({arg}, {sign_bit}, {high})"
        # not / bit slices are mask-and-shift by constants, which operate
        # elementwise on lane vectors unchanged.
        return super()._emit_unop(node)

    def _emit_binop(self, node: ir.IBin) -> str:
        op = node.op
        a_expr = self.use(node.a)
        b_expr = self.use(node.b)
        width = node.a_width
        result_mask = _hex(mask(node.width))
        if op == "add":
            return f"(({a_expr} + {b_expr}) & {result_mask})"
        if op == "sub":
            return f"_vsub({a_expr}, {b_expr}, {result_mask})"
        if op == "mul":
            return f"(({a_expr} * {b_expr}) & {result_mask})"
        if op == "divu":
            return f"_vdiv({a_expr}, {b_expr}, {result_mask})"
        if op == "remu":
            return f"_vrem({a_expr}, {b_expr})"
        if op == "and":
            return f"({a_expr} & {b_expr})"
        if op == "or":
            return f"({a_expr} | {b_expr})"
        if op == "xor":
            return f"({a_expr} ^ {b_expr})"
        if op in ("eq", "ne", "ltu", "leu", "gtu", "geu"):
            fn = {"eq": "_veq", "ne": "_vne", "ltu": "_vltu",
                  "leu": "_vleu", "gtu": "_vgtu", "geu": "_vgeu"}[op]
            return f"{fn}({a_expr}, {b_expr})"
        if op in ("lts", "les", "gts", "ges"):
            fn = {"lts": "_vlts", "les": "_vles",
                  "gts": "_vgts", "ges": "_vges"}[op]
            half = _hex(1 << (width - 1))
            return f"{fn}({a_expr}, {b_expr}, {half})"
        if op == "concat":
            return f"(({a_expr} << {node.b_width}) | {b_expr})"
        if op == "sll":
            if isinstance(node.b, ir.IConst):
                if node.b.value >= width:
                    return "0"
                return f"(({a_expr} << {node.b.value}) & {result_mask})"
            return f"_vshl({a_expr}, {b_expr}, {width}, {result_mask})"
        if op == "srl":
            if isinstance(node.b, ir.IConst):
                if node.b.value >= width:
                    return "0"
                return f"({a_expr} >> {node.b.value})"
            return f"_vshr({a_expr}, {b_expr}, {width})"
        if op == "sra":
            sign_bit = _hex(1 << (width - 1))
            if isinstance(node.b, ir.IConst):
                shift = _hex(min(node.b.value, width))
                return (f"_vsar({a_expr}, {shift}, {width}, {sign_bit}, "
                        f"{result_mask})")
            return (f"_vsar({a_expr}, {b_expr}, {width}, {sign_bit}, "
                    f"{result_mask})")
        if op == "sel":
            if isinstance(node.b, ir.IConst):
                if node.b.value >= width:
                    return "0"
                return f"(({a_expr} >> {node.b.value}) & 1)"
            return f"_vselbit({a_expr}, {b_expr}, {width})"
        raise CompileError(f"unknown binop {op!r}")

    # -- local assignment (masked merge under a conjunction) -------------
    def emit_sset(self, stmt: ir.SSet) -> None:
        if isinstance(stmt.target, ir.Temp):
            # Only reachable through the base statement-form If, which the
            # vector emitters never produce — joins happen in emit_sif.
            self.line(f"{self._names[stmt.target.id]} = "
                      f"{self.use(stmt.value)}")
            return
        name = stmt.target.name
        value = self.use(stmt.value)
        self._barrier_local(name)
        if stmt.init or self._conj is None:
            # A Let binding is the name's first assignment: lanes outside
            # the conjunction hold garbage that no masked use observes.
            self.line(f"{name} = {value}")
            return
        self.line(f"{name} = _np.where({self._conj}, _u({value}), "
                  f"_u({name}))")

    # -- conditionals -----------------------------------------------------
    def _select_expr(self, cond: str, then: str, orelse: str) -> str:
        # Both arms are pure and total, so an eager elementwise select is
        # exact.
        return (f"_np.where(_bv({cond}, {self.lanes}), "
                f"_u({then}), _u({orelse}))")

    def emit_sif(self, stmt: ir.SIf) -> None:
        pure = self._stmts_pure(stmt.then) and (
            stmt.orelse is None or self._stmts_pure(stmt.orelse))
        if pure:
            if stmt.result is not None:
                self._emit_select(stmt)
            else:
                self.drop(stmt.cond)
            return
        self._barrier_branch()
        cond = self.use(stmt.cond)
        cvar = self.fresh("c")
        self.line(f"{cvar} = _bv({cond}, {self.lanes})")
        saved = self._conj
        if stmt.result is not None:
            # Value join: run both arms under complementary conjunctions,
            # then select.  The then-value is hoisted before the else arm
            # so its evaluation cannot observe the else arm's (masked)
            # effects.
            self._conj = (cvar if saved is None
                          else self._fresh_and(cvar, saved))
            then = self.hoist(self._arm_value(stmt.then))
            self._conj = self._negated(cvar, saved)
            orelse = self._arm_value(stmt.orelse)
            self._conj = saved
            temp = self.fresh()
            self.line(f"{temp} = _np.where({cvar}, _u({then}), "
                      f"_u({orelse}))")
            self._names[stmt.result.id] = temp
            return
        # Discarded value: emit only the arms that have effects.
        if not self._stmts_pure(stmt.then):
            self._conj = (cvar if saved is None
                          else self._fresh_and(cvar, saved))
            self._enter_frame()
            self.emit_stmts(stmt.then)
            self._exit_frame()
        if stmt.orelse is not None and not self._stmts_pure(stmt.orelse):
            self._conj = self._negated(cvar, saved)
            self._enter_frame()
            self.emit_stmts(stmt.orelse)
            self._exit_frame()
        self._conj = saved

    def _negated(self, cvar: str, saved: Optional[str]) -> str:
        nvar = self.fresh("c")
        if saved is None:
            self.line(f"{nvar} = ~{cvar}")
        else:
            self.line(f"{nvar} = ~{cvar} & {saved}")
        return nvar

    def _arm_value(self, stmts) -> str:
        """Emit one join arm (its final statement is the SSet of the join
        temp) and return the arm's value expression."""
        self._enter_frame()
        self.emit_stmts(stmts[:-1])
        last = stmts[-1]
        assert isinstance(last, ir.SSet) and isinstance(last.target, ir.Temp)
        value = self.use(last.value)
        self._exit_frame()
        return value


class _VectorFnEmitter(_VectorOps, _FnEmitter):
    """Vectorized module-level function for a pure design fn."""

    def __init__(self, out: _Builder, meta: _Meta, lanes: int):
        super().__init__(out, meta)
        self.lanes = lanes


class _VectorRuleEmitter(_VectorOps, _Emitter):
    """Emits one rule as a masked straight-line lane method.

    The method mirrors the O2 layout: accumulated (A) rows are entered
    from the cycle-log (L) rows for the rule's footprint, the body updates
    A under per-lane masks, and the commit copies A back to L for lanes
    still active.  ``_act`` (length-B bool) replaces ``return False``."""

    def __init__(self, out: _Builder, meta: _Meta, design: Design,
                 rule: ir.RuleIR, lanes: int, reg_id: Dict[str, int],
                 footprint: Sequence[int]):
        super().__init__(out, meta)
        self.design = design
        self.rule = rule
        self.lanes = lanes
        self.reg_id = reg_id
        self.footprint = list(footprint)

    def effmask(self) -> str:
        """Lanes for which the current statement's effects are live."""
        if self._conj is None:
            return "_act"
        return f"({self._conj} & _act)"

    def _kill(self, fail: str, comment: str) -> None:
        """Deactivate lanes for which ``fail`` holds (under the current
        branch conjunction)."""
        if self._conj is None:
            self.line(f"_act &= ~({fail})  # {comment}")
        else:
            self.line(f"_act &= ~(({fail}) & {self._conj})  # {comment}")

    # -- effectful statements --------------------------------------------
    def emit_sread(self, stmt: ir.SRead) -> None:
        name = stmt.reg
        i = self.reg_id[name]
        if stmt.check:
            bits = 12 if stmt.port == 0 else 8
            self._kill(f"(Lrw[{i}] & {bits}) != 0",
                       f"{name}.rd{stmt.port} conflict")
        if stmt.track:
            flag = 1 if stmt.port == 0 else 2
            self._barrier_state()
            self.line(f"_ow(Arw[{i}], {flag}, {self.effmask()})")
        if stmt.port == 0:
            value = f"S[{i}]"
        else:
            value = f"_np.where((Arw[{i}] & 4) != 0, Ad0[{i}], S[{i}])"
        uses = self._uses.get(stmt.temp.id, 0)
        if uses <= 0:
            return
        if uses == 1:
            self._defer(stmt.temp.id, value, stmt.port == 1, set())
            return
        temp = self.fresh()
        self.line(f"{temp} = {value}")
        self._names[stmt.temp.id] = temp

    def emit_swrite(self, stmt: ir.SWrite) -> None:
        # The value operand was lowered before this statement (interpreter
        # order: value first, conflict check second).  Splicing a deferred
        # value past this statement's own flag update is safe: a same-
        # register rd1-then-wr0 kills every lane the rd1 flagged, and a
        # wr1 flag/store never feeds the rd1 forwarding expression.
        value_expr = self.use(stmt.value)
        name = stmt.reg
        i = self.reg_id[name]
        if stmt.check:
            bits = 14 if stmt.port == 0 else 8
            self._kill(f"(Arw[{i}] & {bits}) != 0",
                       f"{name}.wr{stmt.port} conflict")
        self._barrier_state()
        mm = self.fresh("w")
        self.line(f"{mm} = {self.effmask()}")
        if stmt.track:
            self.line(f"_ow(Arw[{i}], {4 if stmt.port == 0 else 8}, {mm})")
        self.line(f"_st(Ad{stmt.port}[{i}], {value_expr}, {mm})"
                  f"  # {name}.wr{stmt.port}")

    def emit_sabort(self, stmt: ir.SAbort) -> None:
        if self._conj is None:
            self.line("_act[:] = False")
        else:
            self.line(f"_act &= ~{self._conj}")

    def _emit_ext_bind(self, stmt: ir.Bind, uses: int) -> None:
        # Scalar drain: external calls are per-lane observable effects
        # (each lane has its own environment), so the active lanes are
        # drained one at a time through their own callable, in lane order.
        op = stmt.op
        arg = self.use(op.a)
        ret_mask = _hex(mask(op.width))
        avar = self.fresh("a")
        self.line(f"{avar} = _np.broadcast_to(_u({arg}), ({self.lanes},))")
        rvar = self.fresh("x")
        self.line(f"{rvar} = _np.zeros({self.lanes}, _DT)")
        self.line(f"for _k in _np.nonzero({self.effmask()})[0]:")
        self.out.indent += 1
        self.line(f"{rvar}[_k] = "
                  f"self._ext_{op.fn}[_k](int({avar}[_k])) & {ret_mask}")
        self.out.indent -= 1
        self._names[stmt.temp.id] = rvar

    # -- whole rule --------------------------------------------------------
    def emit_rule(self) -> None:
        rule = self.rule
        self.setup(rule.body)
        self.line(f"def rule_{rule.name}(self):")
        self.out.indent += 1
        self.line("S = self._S")
        self.line("Lrw = self._Lrw")
        self.line("Ld0 = self._Ld0")
        self.line("Ld1 = self._Ld1")
        self.line("Arw = self._Arw")
        self.line("Ad0 = self._Ad0")
        self.line("Ad1 = self._Ad1")
        self.line("_act = self._act")
        self.line("_act[:] = True")
        for i in self.footprint:
            self.line(f"_np.copyto(Arw[{i}], Lrw[{i}])")
            self.line(f"_np.copyto(Ad0[{i}], Ld0[{i}])")
            self.line(f"_np.copyto(Ad1[{i}], Ld1[{i}])")
        self.emit_stmts(rule.body)
        for i in self.footprint:
            self.line(f"_np.copyto(Lrw[{i}], Arw[{i}], where=_act)")
            self.line(f"_np.copyto(Ld0[{i}], Ad0[{i}], where=_act)")
            self.line(f"_np.copyto(Ld1[{i}], Ad1[{i}], where=_act)")
        self.line("return _act")
        self.out.indent -= 1
        self.line("")


# ----------------------------------------------------------------------
# List backend: the scalar emitter per lane, under a lockstep wrapper.
# ----------------------------------------------------------------------

class _LaneLayout(_Layout):
    """O2 log layout with every slot widened to a lane column: state and
    log entries are indexed ``row[i][_k]`` for register ``i``, lane
    ``_k``.  Entry copies and commits live in the lockstep wrapper, so
    per-lane rules only check/update their own column."""

    def read_check(self, i, port):
        if port == 0:
            return f"Lrw[{i}][_k] & 12"
        return f"Lrw[{i}][_k] & 8"

    def read_flag_stmts(self, i, port):
        return [f"Arw[{i}][_k] |= {1 if port == 0 else 2}"]

    def read_value(self, i, port):
        if port == 0:
            return f"S[{i}][_k]"
        return f"(Ad0[{i}][_k] if Arw[{i}][_k] & 4 else S[{i}][_k])"

    def write_check(self, i, port):
        if port == 0:
            return f"Arw[{i}][_k] & 14"
        return f"Arw[{i}][_k] & 8"

    def write_stmts(self, i, port, value, track=True):
        stmts = []
        if track:
            stmts.append(f"Arw[{i}][_k] |= {4 if port == 0 else 8}")
        stmts.append(f"Ad{port}[{i}][_k] = {value}")
        return stmts

    def rule_locals(self, rule):
        return [
            "S = self._S",
            "Lrw = self._Lrw", "Ld0 = self._Ld0", "Ld1 = self._Ld1",
            "Arw = self._Arw", "Ad0 = self._Ad0", "Ad1 = self._Ad1",
        ]

    def rule_commit(self, rule):
        return ["return True"]

    def fail_stmt(self, rule, effects_so_far):
        return "return False"


class _LaneRuleEmitter(_RuleEmitter):
    """Scalar rule body specialized to one lane (``rule_r_lane``)."""

    def emit_rule(self) -> None:
        rule = self.rule
        self.setup(rule.body)
        self.line(f"def rule_{rule.name}_lane(self, _k):")
        self.out.indent += 1
        for alias in self.layout.rule_locals(rule.name):
            self.line(alias)
        self.emit_stmts(rule.body)
        for stmt in self.layout.rule_commit(rule.name):
            self.line(stmt)
        self.out.indent -= 1
        self.line("")

    def _ext_call_expr(self, fn: str, arg: str, ret_mask: str) -> str:
        return f"(self._ext_{fn}[_k]({arg}) & {ret_mask})"


# ----------------------------------------------------------------------
# Whole-module generation.
# ----------------------------------------------------------------------

def generate_batch_source(design: Design, lanes: int,
                          backend: str) -> Tuple[str, _Meta]:
    """Generate the Python source of a width-``lanes`` lockstep model."""
    if not design.finalized:
        design.finalize()
    # One lowering feeds both backends: the batched tier follows the O2
    # semantics family, so only lowering + read-check dedup apply here.
    module = run_pipeline(design, 2, pipeline=batch_pipeline())
    regs = list(design.registers)
    n = len(regs)
    reg_id = {name: i for i, name in enumerate(regs)}
    out = _Builder()
    meta = _Meta()

    out.line(f'"""Batched lockstep Cuttlesim model for design '
             f'{design.name!r} ({lanes} lanes, {backend} backend).')
    out.line("")
    out.line("Auto-generated; every register is a width-B lane vector and")
    out.line("per-lane activity masks replace early-exit control flow.")
    out.line('"""')
    out.line("")
    if backend == "list":
        out.line("def _sgn(v, half, full):")
        out.line("    return v - full if v >= half else v")
        out.line("")
    masks = ", ".join(_hex(mask(r.typ.width))
                      for r in design.registers.values())
    out.line(f"_RM = ({masks}{',' if n == 1 else ''})")
    if backend == "list":
        out.line(f"_BZ = (0,) * {lanes}")
    out.line("")

    for fn in module.fns:
        if backend == "numpy":
            _VectorFnEmitter(out, meta, lanes).emit_fn(fn)
        else:
            _FnEmitter(out, meta).emit_fn(fn)

    out.line("class Model(BatchModelBase):")
    out.indent += 1
    out.line(f"DESIGN_NAME = {design.name!r}")
    out.line(f"BATCH = {lanes}")
    out.line(f"BACKEND = {backend!r}")
    out.line("OPT_LEVEL = 2")
    reg_names = tuple(regs)
    out.line(f"REG_NAMES = {reg_names!r}")
    out.line(f"REG_INIT = "
             f"{tuple(r.init for r in design.registers.values())!r}")
    out.line(f"REG_IDS = {dict((name, i) for i, name in enumerate(regs))!r}")
    out.line("REG_MASKS = _RM")
    out.line(f"RULE_NAMES = {tuple(design.scheduler)!r}")
    out.line("")

    extfuns = sorted(design.extfuns)
    if extfuns:
        out.line("def _bind_extfuns(self):")
        out.indent += 1
        for name in extfuns:
            out.line(f"self._ext_{name} = "
                     f"[env.resolve({name!r}) for env in self._envs]")
        out.indent -= 1
        out.line("")

    # reset --------------------------------------------------------------
    out.line("def reset(self):")
    out.indent += 1
    out.line("self.cycle = 0")
    if backend == "numpy":
        out.line(f"self._S = [_np.full({lanes}, init, _DT) "
                 f"for init in self.REG_INIT]")
        out.line(f"self._Lrw = [_np.zeros({lanes}, _np.uint8) "
                 f"for _ in range({n})]")
        out.line("self._Ld0 = [row.copy() for row in self._S]")
        out.line("self._Ld1 = [row.copy() for row in self._S]")
        out.line(f"self._Arw = [_np.zeros({lanes}, _np.uint8) "
                 f"for _ in range({n})]")
        out.line("self._Ad0 = [row.copy() for row in self._S]")
        out.line("self._Ad1 = [row.copy() for row in self._S]")
        out.line(f"self._act = _np.ones({lanes}, bool)")
    else:
        out.line(f"self._S = [[init] * {lanes} for init in self.REG_INIT]")
        out.line(f"self._Lrw = [[0] * {lanes} for _ in range({n})]")
        out.line("self._Ld0 = [row[:] for row in self._S]")
        out.line("self._Ld1 = [row[:] for row in self._S]")
        out.line(f"self._Arw = [[0] * {lanes} for _ in range({n})]")
        out.line("self._Ad0 = [row[:] for row in self._S]")
        out.line("self._Ad1 = [row[:] for row in self._S]")
        out.line(f"self._act = [True] * {lanes}")
    out.indent -= 1
    out.line("")

    # rules --------------------------------------------------------------
    for rule in module.rules:
        footprint = _rule_footprint(rule, reg_id)
        if backend == "numpy":
            emitter = _VectorRuleEmitter(out, meta, design, rule, lanes,
                                         reg_id, footprint)
            emitter.emit_rule()
        else:
            layout = _LaneLayout(design, None)
            emitter = _LaneRuleEmitter(out, meta, design, layout, rule,
                                       instrument=False, debug=False)
            emitter.emit_rule()
            out.line(f"def rule_{rule.name}(self):")
            out.indent += 1
            out.line("Lrw = self._Lrw")
            out.line("Ld0 = self._Ld0")
            out.line("Ld1 = self._Ld1")
            out.line("Arw = self._Arw")
            out.line("Ad0 = self._Ad0")
            out.line("Ad1 = self._Ad1")
            for i in footprint:
                out.line(f"Arw[{i}][:] = Lrw[{i}]")
                out.line(f"Ad0[{i}][:] = Ld0[{i}]")
                out.line(f"Ad1[{i}][:] = Ld1[{i}]")
            out.line("act = self._act")
            out.line(f"lane = self.rule_{rule.name}_lane")
            out.line(f"for _k in range({lanes}):")
            out.line("    act[_k] = lane(_k)")
            for i in footprint:
                out.line(f"_L, _A = Lrw[{i}], Arw[{i}]")
                out.line(f"_D0, _A0 = Ld0[{i}], Ad0[{i}]")
                out.line(f"_D1, _A1 = Ld1[{i}], Ad1[{i}]")
                out.line(f"for _k in range({lanes}):")
                out.line("    if act[_k]:")
                out.line("        _L[_k] = _A[_k]")
                out.line("        _D0[_k] = _A0[_k]")
                out.line("        _D1[_k] = _A1[_k]")
            out.line("return act")
            out.indent -= 1
            out.line("")

    # cycle methods ------------------------------------------------------
    def emit_clear() -> None:
        out.line("Lrw = self._Lrw")
        out.line(f"for _i in range({n}):")
        if backend == "numpy":
            out.line("    Lrw[_i][:] = 0")
        else:
            out.line("    Lrw[_i][:] = _BZ")

    def emit_commit() -> None:
        out.line("S = self._S")
        out.line("Ld0 = self._Ld0")
        out.line("Ld1 = self._Ld1")
        if backend == "numpy":
            out.line(f"for _i in range({n}):")
            out.line("    _m = Lrw[_i]")
            out.line("    _np.copyto(S[_i], Ld1[_i], where=(_m & 8) != 0)")
            out.line("    _np.copyto(S[_i], Ld0[_i], where=(_m & 12) == 4)")
        else:
            out.line(f"for _i in range({n}):")
            out.line("    _m, _s = Lrw[_i], S[_i]")
            out.line("    _d0, _d1 = Ld0[_i], Ld1[_i]")
            out.line(f"    for _k in range({lanes}):")
            out.line("        _mk = _m[_k]")
            out.line("        if _mk & 8:")
            out.line("            _s[_k] = _d1[_k]")
            out.line("        elif _mk & 4:")
            out.line("            _s[_k] = _d0[_k]")

    copy_call = ".copy()" if backend == "numpy" else "[:]"

    out.line("def _cycle(self):")
    out.indent += 1
    out.line("self._before_hooks()")
    emit_clear()
    for rule_name in design.scheduler:
        out.line(f"self.rule_{rule_name}()")
    emit_commit()
    out.line("self.cycle += 1")
    out.line("self._after_hooks()")
    out.indent -= 1
    out.line("")

    out.line("def _cycle_report(self):")
    out.indent += 1
    out.line("self._before_hooks()")
    emit_clear()
    out.line("masks = []")
    for rule_name in design.scheduler:
        out.line(f"masks.append(self.rule_{rule_name}(){copy_call})")
    emit_commit()
    out.line("self.cycle += 1")
    out.line("self._after_hooks()")
    out.line("return self._commit_tuples(masks)")
    out.indent -= 1
    out.line("")

    out.line("def _cycle_ordered(self, methods):")
    out.indent += 1
    out.line("self._before_hooks()")
    emit_clear()
    out.line("masks = []")
    out.line("names = []")
    out.line("for _name, _method in methods:")
    out.line("    names.append(_name)")
    out.line(f"    masks.append(_method(){copy_call})")
    emit_commit()
    out.line("self.cycle += 1")
    out.line("self._after_hooks()")
    out.line("return self._commit_tuples(masks, names)")
    out.indent -= 1
    out.indent -= 1

    meta.line_block = list(out.line_block)
    return out.source(), meta


_batch_counter = 0


def _finish_batch_class(source: str, meta: _Meta, design: Design,
                        lanes: int, backend: str, host_optimize: int):
    """Compile + exec a generated batched model into a class."""
    global _batch_counter
    _batch_counter += 1
    filename = (f"<cuttlesim-batch:{design.name}-B{lanes}"
                f"-{backend}#{_batch_counter}>")
    namespace: Dict[str, object] = {"BatchModelBase": BatchModelBase}
    if backend == "numpy":
        namespace.update(_NUMPY_RUNTIME)
    try:
        code = compile(source, filename, "exec", optimize=host_optimize)
    except SyntaxError as exc:  # pragma: no cover - compiler bug guard
        raise CompileError(
            f"generated batched model failed to parse ({exc}); "
            f"source:\n{source}") from exc
    exec(code, namespace)
    cls = namespace["Model"]
    cls.SOURCE = source
    cls.META = meta
    cls.DESIGN = design
    cls.REG_TYPES = tuple(r.typ for r in design.registers.values())
    cls.FILENAME = filename
    linecache.cache[filename] = (len(source), None,
                                 source.splitlines(True), filename)
    weakref.finalize(cls, linecache.cache.pop, filename, None)
    return cls


def compile_batch_model(design: Design, lanes: int, backend: str = "auto",
                        cache=None, host_optimize: int = -1):
    """Compile ``design`` into a width-``lanes`` lockstep model class.

    Instantiate with a list of per-lane :class:`Environment` objects (or
    an ``env_factory``); see :class:`repro.cuttlesim.model.BatchModelBase`.
    ``backend`` is ``"auto"`` (NumPy when feasible), ``"numpy"`` or
    ``"list"``.  ``cache`` works like :func:`compile_model`'s: the batch
    width and resolved backend are folded into the content-addressed key.
    """
    if lanes < 1:
        raise CompileError(f"batch width must be >= 1, got {lanes}")
    if not design.finalized:
        design.finalize()
    resolved = resolve_batch_backend(design, backend)
    store = None
    key = None
    if cache is not None:
        from .cache import resolve_cache

        store = resolve_cache(cache)
        key = store.key_for(design, opt=2, order_independent=False,
                            simplify=False, inline_rules=None,
                            host_optimize=host_optimize,
                            batch=lanes, batch_backend=resolved)
        cls = store.lookup_class(key)
        if cls is not None:
            return cls
        entry = store.lookup_source(key)
        if entry is not None:
            source, meta = entry
            cls = _finish_batch_class(source, meta, design, lanes, resolved,
                                      host_optimize)
            store.store_class(key, cls)
            return cls
    source, meta = generate_batch_source(design, lanes, resolved)
    cls = _finish_batch_class(source, meta, design, lanes, resolved,
                              host_optimize)
    if store is not None:
        store.store_source(key, source, meta, design_name=design.name, opt=2)
        store.store_class(key, cls)
    return cls
