"""The pass pipeline: opt levels O0–O5 as explicit IR transformations.

``compile_model(opt=N)`` maps to a *pass list* over the mid-level IR
(:mod:`repro.cuttlesim.ir`): lowering first, then one pass per paper
optimization, read-check deduplication last.  Backends (the scalar
emitter in ``codegen.py``, the batched lane emitters in ``batch.py``)
consume the resulting :class:`~..ir.ModuleIR` without re-deriving any
lowering decision.

Debugging contract: every *prefix* of every pipeline yields an
emittable, semantics-preserving module — ``run_pipeline(stop_after=p)``
stops after pass ``p``, and :func:`dump_ir` renders the result (the CLI
``--stop-after`` flag).  The differential fuzzer uses the same hook as a
pass-equivalence oracle.

Cache keys incorporate :func:`pipeline_fingerprint` (pass names and
versions), so reordering passes or bumping a pass version can never
replay stale generated code from the on-disk model cache.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, List, Optional, Sequence

from ...errors import CompileError
from .. import ir
from . import opt as _opt
from .lower import lower_design


class Pass:
    """A named, versioned module transformation.  Bump ``version`` on any
    change that can alter generated code — the version is part of every
    model-cache key via :func:`pipeline_fingerprint`."""

    def __init__(self, name: str, version: int,
                 fn: Callable[[ir.ModuleIR], None], doc: str) -> None:
        self.name = name
        self.version = version
        self.fn = fn
        self.doc = doc

    def __repr__(self) -> str:
        return f"<Pass {self.name}@v{self.version}>"


#: Lowering is listed like a pass (it has a version and appears in every
#: pipeline and fingerprint) but is special-cased by ``run_pipeline``:
#: it *creates* the module rather than transforming one.
LOWER = "lower"

PASSES: Dict[str, Pass] = {}


def _register(name: str, version: int, fn, doc: str) -> None:
    PASSES[name] = Pass(name, version, fn, doc)


_register(LOWER, 1, None,
          "flatten Kôika actions into bind-once three-address IR")
_register("rwset-separation", 1, _opt.rwset_separation,
          "O1: read-write sets as int bitmasks separate from data")
_register("log-accumulation", 1, _opt.log_accumulation,
          "O2: one accumulated log; commits become plain copies")
_register("reset-on-failure", 1, _opt.reset_on_failure,
          "O3: reset the accumulated log on failure, not on entry")
_register("state-merge", 1, _opt.state_merge,
          "O4: merged data ports, logs are the state")
# v2: NodeInfo.may_fail now ORs over visits of a node reused within one
# body (it used to keep the last visit only), which can retain checks v1
# elided.
_register("register-classification", 2, _opt.register_classification,
          "O5: static analysis drops provably-safe checks and flags")
_register("early-fail", 1, _opt.early_fail,
          "O5: failures before any effect return without rollback")
_register("const-guard-prune", 1, _opt.const_guard_prune,
          "fold dataflow-decided branches; drop dead abort checks")
_register("read-check-dedup", 1, _opt.read_check_dedup,
          "suppress re-checking reads already checked unconditionally")


#: Pass list per optimization level.  Each level is the previous plus
#: one paper optimization; dedup always runs last.
PIPELINES: Dict[int, List[str]] = {
    0: [LOWER, "read-check-dedup"],
    1: [LOWER, "rwset-separation", "read-check-dedup"],
    2: [LOWER, "rwset-separation", "log-accumulation", "read-check-dedup"],
    3: [LOWER, "rwset-separation", "log-accumulation", "reset-on-failure",
        "read-check-dedup"],
    4: [LOWER, "rwset-separation", "log-accumulation", "reset-on-failure",
        "state-merge", "const-guard-prune", "read-check-dedup"],
    5: [LOWER, "rwset-separation", "log-accumulation", "reset-on-failure",
        "state-merge", "register-classification", "early-fail",
        "const-guard-prune", "read-check-dedup"],
}


def pipeline_for(opt: int) -> List[str]:
    try:
        return list(PIPELINES[opt])
    except KeyError:
        raise CompileError(f"unknown optimization level O{opt}") from None


def batch_pipeline() -> List[str]:
    """The batched lockstep tier follows the O2 semantics family; its
    layouts live in ``batch.py`` so only lowering and dedup apply."""
    return [LOWER, "read-check-dedup"]


def pipeline_fingerprint(names: Sequence[str]) -> str:
    """Stable digest of a pass list (names + versions) for cache keys."""
    tags = "|".join(f"{name}@v{PASSES[name].version}" for name in names)
    return hashlib.sha256(tags.encode()).hexdigest()[:16]


def run_pipeline(design, opt: int, analysis=None,
                 stop_after: Optional[str] = None,
                 pipeline: Optional[Sequence[str]] = None) -> ir.ModuleIR:
    """Lower ``design`` and run the pass list for ``opt`` (or an explicit
    ``pipeline``), optionally stopping after the named pass.

    Every prefix is emittable: the returned module always carries enough
    policy for the backends, just less optimized."""
    names = list(pipeline) if pipeline is not None else pipeline_for(opt)
    if stop_after is not None and stop_after not in names:
        raise CompileError(
            f"--stop-after pass {stop_after!r} is not in the O{opt} "
            f"pipeline {names}")
    module = None
    for name in names:
        if name == LOWER:
            module = lower_design(design, opt)
            module.analysis = analysis
        else:
            if module is None:
                raise CompileError(
                    f"pipeline {names} does not start with {LOWER!r}")
            PASSES[name].fn(module)
        module.applied.append(name)
        if name == stop_after:
            break
    if module is None:
        raise CompileError("empty pass pipeline")
    return module


def dump_ir(design, opt: int = 5, stop_after: Optional[str] = None) -> str:
    """Render the IR after ``stop_after`` (or the full pipeline) — the
    implementation of the CLI ``--stop-after`` debug flag."""
    module = run_pipeline(design, opt, stop_after=stop_after)
    return ir.format_module(module)


__all__ = [
    "LOWER", "PASSES", "PIPELINES", "Pass", "batch_pipeline", "dump_ir",
    "lower_design", "pipeline_fingerprint", "pipeline_for", "run_pipeline",
]
