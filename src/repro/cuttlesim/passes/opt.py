"""The optimization passes: one per paper optimization (§3.2–§3.3).

Each pass takes a :class:`~..ir.ModuleIR` and refines either the storage
*layout* the emitter will instantiate (rwset separation, log
accumulation, state merge, register classification) or the per-statement
*policy bits* the IR carries (``check``/``track``/``effects_before``).
Layout passes are one-liners on purpose: the layouts themselves live
next to the emitters (they are spelling, not semantics), and what the
pass records is the *decision*.  Policy passes do real work here, on the
IR, where it is checkable — the emitters just obey the bits.

Every pass is idempotent and total: running a prefix of a pipeline
always yields an emittable module (the ``--stop-after`` contract).
"""

from __future__ import annotations

from ...analysis.abstract import RD1, WR0, WR1, analyze
from .. import ir

# -- layout refinements (§3.2) -----------------------------------------


def rwset_separation(module: ir.ModuleIR) -> None:
    """O1: split read-write sets (int bitmasks) from the data arrays, so
    set resets become cache-friendly slice copies."""
    module.layout = "rwsets"


def log_accumulation(module: ir.ModuleIR) -> None:
    """O2: keep one accumulated log (``L ++ l``) instead of separate
    rule/cycle logs; write checks consult one mask, commits are copies."""
    module.layout = "accumulated"


def reset_on_failure(module: ir.ModuleIR) -> None:
    """O3: reset the accumulated log when a rule *fails* instead of on
    every entry — successful rules skip the reset entirely."""
    module.reset_on_failure = True


def state_merge(module: ir.ModuleIR) -> None:
    """O4: merge ``data0``/``data1`` and drop the beginning-of-cycle
    state array — the logs *are* the state."""
    module.layout = "merged"


# -- register classification (§3.3) ------------------------------------


def register_classification(module: ir.ModuleIR) -> None:
    """O5: use the abstract-interpretation results to drop conflict
    checks that can never fire and log updates nobody reads.

    ``check`` survives only where the analysis says the operation may
    fail; ``track`` survives only where a *later* check in some rule
    consults the flag (``rd0`` is never tracked in a sequential model).
    """
    if module.analysis is None:
        module.analysis = analyze(module.design)
    analysis = module.analysis
    module.layout = "classified"
    for rule in module.rules:
        for stmt in ir.walk_stmts(rule.body):
            if isinstance(stmt, ir.SRead):
                info = analysis.node_info.get(stmt.uid)
                stmt.check = info is not None and info.may_fail
                stmt.track = (stmt.port == 1 and RD1 in
                              analysis.tracked_flags.get(stmt.reg, set()))
            elif isinstance(stmt, ir.SWrite):
                info = analysis.node_info.get(stmt.uid)
                stmt.check = info is not None and info.may_fail
                flag = WR0 if stmt.port == 0 else WR1
                stmt.track = flag in analysis.tracked_flags.get(
                    stmt.reg, set())


# -- early-fail fast paths (§3.3) --------------------------------------


def _walk_effects(stmts, effects: bool) -> bool:
    """Propagate "has any effect happened yet" through a statement list
    in *emission* order (then-arm before else-arm, linearly — a failure
    in the else arm still needs rollback if the then arm had effects)."""
    for stmt in stmts:
        if isinstance(stmt, ir.SRead):
            stmt.effects_before = effects
            if stmt.track and stmt.port == 1:
                effects = True
        elif isinstance(stmt, ir.SWrite):
            stmt.effects_before = effects
            effects = True
        elif isinstance(stmt, ir.SAbort):
            stmt.effects_before = effects
        elif isinstance(stmt, ir.SIf):
            effects = _walk_effects(stmt.then, effects)
            if stmt.orelse is not None:
                effects = _walk_effects(stmt.orelse, effects)
    return effects


def early_fail(module: ir.ModuleIR) -> None:
    """O5: failure sites reached before any effect return ``False``
    directly — no rollback helper call."""
    for rule in module.rules:
        _walk_effects(rule.body, False)


# -- read-check deduplication ------------------------------------------


def _dedup(stmts, checked, depth: int) -> None:
    for stmt in stmts:
        if isinstance(stmt, ir.SRead) and stmt.check:
            key = (stmt.reg, stmt.port)
            if key in checked:
                stmt.check = False
            elif depth == 0:
                checked.add(key)
        elif isinstance(stmt, ir.SIf):
            _dedup(stmt.then, checked, depth + 1)
            if stmt.orelse is not None:
                _dedup(stmt.orelse, checked, depth + 1)


def read_check_dedup(module: ir.ModuleIR) -> None:
    """Read checks consult only the cycle log, which is constant for the
    whole rule, so a check that already ran unconditionally never needs
    repeating.  (Only unconditional checks — branch depth 0 — suppress
    later ones; a check inside a branch may not have run.)"""
    for rule in module.rules:
        _dedup(rule.body, set(), 0)


# -- constant-guard pruning --------------------------------------------


def _subst_value(value, subst):
    if isinstance(value, ir.Temp):
        return subst.get(value.id, value)
    return value


def _apply_subst(stmt: ir.Stmt, subst) -> None:
    """Rewrite a statement's operands through the substitution map."""
    if not subst:
        return
    if isinstance(stmt, ir.Bind):
        op = stmt.op
        if isinstance(op, ir.IBin):
            op.a = _subst_value(op.a, subst)
            op.b = _subst_value(op.b, subst)
        elif isinstance(op, (ir.IUn, ir.IExt)):
            op.a = _subst_value(op.a, subst)
        elif isinstance(op, ir.ISubst):
            op.a = _subst_value(op.a, subst)
            op.value = _subst_value(op.value, subst)
        elif isinstance(op, ir.ICall):
            op.args = tuple(_subst_value(a, subst) for a in op.args)
    elif isinstance(stmt, (ir.SSet, ir.SWrite)):
        stmt.value = _subst_value(stmt.value, subst)
    elif isinstance(stmt, ir.SIf):
        stmt.cond = _subst_value(stmt.cond, subst)


def _prune_block(stmts, facts, subst):
    """Prune one block: fold decided branches, drop post-abort tails.

    A folded value-producing branch ends with the ``SSet`` of its join
    temp; the emitter only knows join temps through their enclosing SIf,
    so the SSet is dropped and the temp substituted by its value at
    every later use (bind-once makes this a plain map).  A folded arm
    ending in an abort truncates the block — everything after it,
    including uses of the join temp, is unreachable.
    """
    out = []
    for stmt in stmts:
        _apply_subst(stmt, subst)
        if isinstance(stmt, ir.SAbort):
            out.append(stmt)
            break
        if not isinstance(stmt, ir.SIf):
            out.append(stmt)
            continue
        decided = facts.cond_const(stmt)
        if decided is None:
            stmt.then = _prune_block(stmt.then, facts, subst)
            if stmt.orelse is not None:
                stmt.orelse = _prune_block(stmt.orelse, facts, subst)
            out.append(stmt)
            continue
        arm = stmt.then if decided else (stmt.orelse or [])
        pruned = _prune_block(list(arm), facts, subst)
        if stmt.result is not None:
            if pruned and isinstance(pruned[-1], ir.SSet) and \
                    isinstance(pruned[-1].target, ir.Temp) and \
                    pruned[-1].target.id == stmt.result.id:
                last = pruned.pop()
                out.extend(pruned)
                subst[stmt.result.id] = last.value
                continue
            # The arm aborted before producing the join value; the rest
            # of this block (including every use of it) is unreachable.
            assert pruned and isinstance(pruned[-1], ir.SAbort), pruned
            out.extend(pruned)
            break
        out.extend(pruned)
        if pruned and isinstance(pruned[-1], ir.SAbort):
            break
    return out


def const_guard_prune(module: ir.ModuleIR) -> None:
    """O4/O5: delete branches and abort checks the dataflow decides.

    Runs the IR value dataflow with **no state assumptions** (every
    register reads as ⊤ — the debugger and the batch harness can poke
    any register to any value between cycles), so only literal constants
    propagated through temps and locals can decide a branch.  Register
    invariants are deliberately *not* consulted here; they feed lints
    and the runtime lint oracle only.

    Pure function bodies are left alone: the dataflow records facts for
    them per call site, so a shared statement may carry the last call's
    condition value — folding on that would miscompile other callers.
    """
    from ...analysis.dataflow import analyze_module

    flow = analyze_module(module, assume_state=False)
    for rule in module.rules:
        rule.body = _prune_block(rule.body, flow.rules[rule.name], {})
