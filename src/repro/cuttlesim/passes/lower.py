"""AST → IR lowering (the pipeline's mandatory first step).

Kôika actions are expression trees; this pass flattens them into the
three-address statements of :mod:`repro.cuttlesim.ir`.  Lowering fixes
the *evaluation order* once and for all — operands become temps bound at
their source position, so no later pass or backend can accidentally
re-evaluate or reorder an effect (the template-splice bug family).

What lowering decides (so backends don't have to):

* ``zextl`` disappears (values are already zero-extended integers);
* ``sextl`` of a zero-width value folds to the constant 0;
* struct field projections become ``slice`` ops with resolved offsets —
  backends never see field names;
* written values are lowered *before* their :class:`~..ir.SWrite`, which
  is the reference interpreter's order (value first, conflict check
  second): an impure value expression runs even when the write aborts.

Policy flags (``check``/``track``/``effects_before``) start maximally
conservative here; the optimization passes in :mod:`.opt` refine them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...errors import CompileError
from ...koika.ast import (
    Abort,
    Action,
    Assign,
    Binop,
    Call,
    Const,
    ExtCall,
    GetField,
    If,
    Let,
    Read,
    Seq,
    SubstField,
    Unop,
    Var,
    Write,
)
from ...koika.design import Design, Fn, Rule
from ...koika.types import StructType
from .. import ir


class _Lowerer:
    """Lowers one rule or function body (fresh temp/name space each)."""

    def __init__(self, allow_effects: bool) -> None:
        self.allow_effects = allow_effects
        self.stmts: List[ir.Stmt] = []
        self.scope: Dict[str, str] = {}
        self._counter = 0

    # -- temps and local names ------------------------------------------
    def fresh(self) -> ir.Temp:
        temp = ir.Temp(self._counter)
        self._counter += 1
        return temp

    def bind_local(self, name: str) -> str:
        """Pick the Python name for a ``Let``; shadowed names get a
        uniquifying suffix (same policy for every backend)."""
        base = f"v_{name}"
        if self.scope.get(name) == base or base in self.scope.values():
            self._counter += 1
            return f"{base}_{self._counter}"
        return base

    # -- nested blocks (If arms) ----------------------------------------
    def block_value(self, node: Action,
                    result: ir.Temp, uid: int) -> List[ir.Stmt]:
        """Lower ``node`` into a fresh statement list ending with an
        ``SSet`` of its value to the branch join temp."""
        saved, self.stmts = self.stmts, []
        value = self.value(node)
        self.stmts.append(ir.SSet(result, value, uid))
        block, self.stmts = self.stmts, saved
        return block

    def block_discard(self, node: Action) -> List[ir.Stmt]:
        saved, self.stmts = self.stmts, []
        self.discard(node)
        block, self.stmts = self.stmts, saved
        return block

    # -- statements ------------------------------------------------------
    def discard(self, node: Action) -> None:
        """Lower a node whose value is unused."""
        if isinstance(node, Seq):
            for action in node.actions:
                self.discard(action)
            return
        if isinstance(node, If):
            cond = self.value(node.cond)
            then = self.block_discard(node.then)
            orelse = (None if node.orelse is None
                      else self.block_discard(node.orelse))
            self.stmts.append(ir.SIf(cond, then, orelse, node.uid))
            return
        if isinstance(node, Let):
            self._lower_let(node, tail=self.discard)
            return
        self.value(node)  # effects materialize; unused pure temps die

    def _lower_let(self, node: Let, tail):
        value = self.value(node.value)
        pyname = self.bind_local(node.name)
        self.stmts.append(
            ir.SSet(ir.LocalRef(pyname), value, node.uid, init=True))
        saved = self.scope.get(node.name)
        self.scope[node.name] = pyname
        result = tail(node.body)
        if saved is not None and saved != pyname:
            self.scope[node.name] = saved
        return result

    # -- values ----------------------------------------------------------
    def value(self, node: Action) -> ir.Value:
        if isinstance(node, Const):
            return ir.IConst(node.value)
        if isinstance(node, Var):
            return ir.LocalRef(self.scope[node.name])
        if isinstance(node, Unop):
            return self._lower_unop(node)
        if isinstance(node, Binop):
            return self._bind_op(node, ir.IBin(
                node.op, self.value(node.a), self.value(node.b),
                node.typ.width, node.a.typ.width, node.b.typ.width))
        if isinstance(node, GetField):
            return self._lower_getfield(node)
        if isinstance(node, SubstField):
            return self._lower_substfield(node)
        if isinstance(node, Call):
            args = [self.value(arg) for arg in node.args]
            return self._bind_op(node, ir.ICall(node.fn, args))
        if isinstance(node, Let):
            return self._lower_let(node, tail=self.value)
        if isinstance(node, Assign):
            value = self.value(node.value)
            self.stmts.append(
                ir.SSet(ir.LocalRef(self.scope[node.name]), value, node.uid))
            return ir.IConst(0)
        if isinstance(node, Seq):
            for action in node.actions[:-1]:
                self.discard(action)
            return self.value(node.actions[-1])
        if isinstance(node, If):
            return self._lower_if(node)
        if isinstance(node, (Read, Write, Abort, ExtCall)):
            return self._lower_effect(node)
        raise CompileError(f"cannot lower {type(node).__name__}")

    def _bind_op(self, node: Action, op: ir.Op) -> ir.Temp:
        temp = self.fresh()
        self.stmts.append(ir.Bind(temp, op, node.uid))
        return temp

    def _lower_unop(self, node: Unop) -> ir.Value:
        arg = self.value(node.arg)
        in_width = node.arg.typ.width
        if node.op == "zextl":
            return arg  # already a zero-extended integer
        if node.op == "sextl" and in_width == 0:
            return ir.IConst(0)
        return self._bind_op(node, ir.IUn(
            node.op, arg, node.typ.width, in_width, node.param))

    def _lower_getfield(self, node: GetField) -> ir.Value:
        arg = self.value(node.arg)
        struct = node.arg.typ
        assert isinstance(struct, StructType)
        offset = struct.field_offset(node.field_name)
        width = struct.field_type(node.field_name).width
        return self._bind_op(node, ir.IUn(
            "slice", arg, width, struct.width, (offset, width)))

    def _lower_substfield(self, node: SubstField) -> ir.Value:
        arg = self.value(node.arg)
        value = self.value(node.value)
        struct = node.arg.typ
        assert isinstance(struct, StructType)
        offset = struct.field_offset(node.field_name)
        width = struct.field_type(node.field_name).width
        return self._bind_op(node, ir.ISubst(
            arg, value, offset, width, struct.width))

    def _lower_if(self, node: If) -> ir.Value:
        if node.typ is not None and node.typ.width == 0:
            self.discard(node)
            return ir.IConst(0)
        cond = self.value(node.cond)
        result = self.fresh()
        assert node.orelse is not None  # value-producing Ifs are total
        then = self.block_value(node.then, result, node.uid)
        orelse = self.block_value(node.orelse, result, node.uid)
        self.stmts.append(ir.SIf(cond, then, orelse, node.uid, result=result))
        return result

    def _lower_effect(self, node: Action) -> ir.Value:
        if not self.allow_effects:
            raise CompileError(
                f"{node.kind} is not allowed in this context (pure function?)"
            )
        if isinstance(node, Read):
            temp = self.fresh()
            self.stmts.append(ir.SRead(temp, node.reg, node.port, node.uid))
            return temp
        if isinstance(node, Write):
            # Interpreter order: the value is evaluated before the
            # conflict check, so it is lowered before the SWrite.
            value = self.value(node.value)
            self.stmts.append(
                ir.SWrite(node.reg, node.port, value, node.uid))
            return ir.IConst(0)
        if isinstance(node, Abort):
            self.stmts.append(ir.SAbort(node.uid))
            return ir.IConst(0)
        assert isinstance(node, ExtCall)
        arg = self.value(node.arg)
        return self._bind_op(node, ir.IExt(node.fn, arg, node.typ.width))


def lower_fn(fn: Fn) -> ir.FnIR:
    lowerer = _Lowerer(allow_effects=False)
    lowerer.scope = {name: f"v_{name}" for name, _ in fn.args}
    result = lowerer.value(fn.body)
    return ir.FnIR(fn.name, [f"v_{name}" for name, _ in fn.args],
                   lowerer.stmts, result, lowerer._counter)


def lower_rule(rule: Rule) -> ir.RuleIR:
    lowerer = _Lowerer(allow_effects=True)
    lowerer.discard(rule.body)
    return ir.RuleIR(rule.name, lowerer.stmts, lowerer._counter)


def lower_design(design: Design, opt: int) -> ir.ModuleIR:
    """Lower every function and scheduled rule of a finalized design."""
    if not design.finalized:
        design.finalize()
    module = ir.ModuleIR(design, opt)
    module.fns = [lower_fn(fn) for fn in design.fns.values()]
    module.rules = [lower_rule(rule) for rule in design.scheduled_rules()]
    return module
